"""Unreachability properties and safety watchdogs.

An unreachability property P specifies a set A of initial states and a set
B of target ("bad") states; P is True when no target state is reachable
from any initial state (Section 2).  The initial states A come from the
circuit's register init values (free-init registers contribute both
values).  The target states B are given as a cube over register outputs.

All safety properties can be modeled this way; following Section 3, a
combinational "bad condition" is turned into a state property by a
*watchdog*: a sticky register that asserts once the condition fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.netlist.circuit import Circuit, NetlistError


@dataclass(frozen=True)
class UnreachabilityProperty:
    """``target`` is a cube over register outputs defining the bad states."""

    name: str
    target: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.target:
            raise ValueError("property needs a non-empty target cube")
        for value in self.target.values():
            if value not in (0, 1):
                raise ValueError("target cube values must be 0 or 1")

    def signals(self) -> List[str]:
        """The signals mentioned in the property (the abstraction seeds)."""
        return sorted(self.target)

    def validate_against(self, circuit: Circuit) -> None:
        for name in self.target:
            if not circuit.is_register_output(name):
                raise NetlistError(
                    f"property {self.name!r}: target signal {name!r} is not "
                    f"a register output of {circuit.name!r} (wrap "
                    f"combinational conditions in a watchdog)"
                )

    def holds_in_state(self, state: Mapping[str, int]) -> bool:
        """Is this (total or partial) state a bad state?  Unassigned target
        signals count as non-matching."""
        return all(state.get(s) == v for s, v in self.target.items())


def watchdog_property(
    circuit: Circuit,
    bad_signal: str,
    name: str,
    watchdog_name: str = "",
) -> UnreachabilityProperty:
    """Model a safety property as unreachability with a watchdog module.

    Adds a sticky register that latches 1 forever once ``bad_signal`` is 1,
    and returns the property "watchdog = 1 is unreachable".  This mirrors
    how the paper's five Table-1 properties were modeled (Section 3).
    """
    if not circuit.is_defined(bad_signal):
        raise NetlistError(f"undefined bad-condition signal {bad_signal!r}")
    wd = watchdog_name or f"wd_{name}"
    data = circuit.fresh_name(f"{wd}_d")
    out = circuit.add_register(data, init=0, output=wd)
    circuit.g_or(out, bad_signal, output=data)
    circuit.mark_output(wd)
    return UnreachabilityProperty(name=name, target={wd: 1})
