"""Two-phase refinement: crucial-register identification (Step 4).

Phase 1 -- *3-valued simulation*: replay the abstract error trace
step-by-step on the original design with every unassigned register and
input at X.  A register whose simulated value conflicts with the trace's
assignment (X conflicts with nothing) is a crucial-register candidate:
adding its fanin cone to the abstract model would force the trace's value
to disagree, invalidating the trace.  When the trace is used for the next
step, conflicting values are overridden with the trace's values
(Section 2.4).  If no conflict appears (rare), the registers the trace
assigns most frequently become the candidates.

Phase 2 -- *greedy sequential-ATPG minimization*: add candidates one at a
time to the abstract model until sequential ATPG reports the trace
unsatisfiable on the refined model, discard the untouched rest, then try
to remove each earlier addition, keeping it out only if the trace stays
unsatisfiable.  If ATPG ever aborts on its budget, fail safe by keeping
all candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.atpg.engine import AtpgBudget, AtpgOutcome, sequential_atpg
from repro.core.abstraction import Abstraction
from repro.kernel.bitsim import BitParallelSimulator, pack_value, planes_value
from repro.kernel.perf import PERF
from repro.trace import Trace
from repro.netlist.circuit import Circuit
from repro.sim.logic3 import X


@dataclass
class RefinementStats:
    candidates: int = 0
    selected: int = 0
    atpg_calls: int = 0
    conflicts_found: bool = True
    minimized: bool = False


@dataclass
class RefinementResult:
    registers: List[str]
    stats: RefinementStats = field(default_factory=RefinementStats)


def crucial_register_candidates(
    abstraction: Abstraction,
    trace: Trace,
    fallback_count: int = 8,
    runtime=None,
) -> RefinementResult:
    """Phase 1: 3-valued simulation of the abstract error trace on the
    original design; conflicting registers outside the abstract model are
    the candidates, ordered by conflict count (then first conflict).

    ``runtime`` is an optional :class:`repro.runtime.Budget` whose
    checkpoint is threaded into the kernel replay."""
    original = abstraction.original
    model = abstraction.model
    sim = BitParallelSimulator(original)
    if runtime is not None:
        sim.checkpoint = runtime.hook("refine")

    conflict_count: Dict[str, int] = {}
    first_conflict: Dict[str, int] = {}

    # Single-lane 3-valued replay on the compiled kernel: every register
    # starts at X except those the trace's first cube assigns.
    state = {name: pack_value(X, 1) for name in original.registers}
    with PERF.timed("kernel.replay"):
        for name, value in trace.cube_at(0).items():
            if original.is_register_output(name):
                state[name] = pack_value(value, 1)
        for cycle in range(trace.length):
            cube = trace.cube_at(cycle)
            register_cube = {
                name: value
                for name, value in cube.items()
                if original.is_register_output(name)
            }
            for name, expected in register_cube.items():
                actual = planes_value(state[name], 0)
                if actual != X and actual != expected:
                    conflict_count[name] = conflict_count.get(name, 0) + 1
                    first_conflict.setdefault(name, cycle)
            # Use the trace's values from here on (override conflicts and
            # fill in unknowns) and drive the primary inputs from the trace.
            drive = {
                name: pack_value(value, 1)
                for name, value in register_cube.items()
            }
            drive.update(
                {
                    name: pack_value(value, 1)
                    for name, value in cube.items()
                    if original.is_input(name)
                }
            )
            frame = sim.evaluate(state, drive, 1)
            state = sim.next_state(frame)

    in_model = set(model.registers)
    candidates = [
        name for name in conflict_count if name not in in_model
    ]
    candidates.sort(
        key=lambda n: (-conflict_count[n], first_conflict[n], n)
    )
    stats = RefinementStats(candidates=len(candidates))
    if not candidates:
        # Rare per the paper: no conflicts.  Fall back to the registers the
        # trace assigns most often (among pseudo-inputs of the model).
        stats.conflicts_found = False
        frequency = trace.assigned_signals()
        pseudo = [
            name
            for name in abstraction.pseudo_input_registers()
            if name in frequency
        ]
        pseudo.sort(key=lambda n: (-frequency[n], n))
        candidates = pseudo[:fallback_count]
        stats.candidates = len(candidates)
    return RefinementResult(registers=candidates, stats=stats)


def trace_satisfiable_on(
    model: Circuit,
    trace: Trace,
    budget: Optional[AtpgBudget] = None,
    incremental: bool = True,
) -> AtpgOutcome:
    """Is the error trace (as per-cycle constraint cubes) satisfiable on a
    candidate abstract model?  Three-way ATPG answer."""
    cubes = {
        cycle: {
            name: value
            for name, value in trace.cube_at(cycle).items()
            if model.is_defined(name)
        }
        for cycle in range(trace.length)
    }
    result = sequential_atpg(
        model,
        trace.length,
        cubes,
        budget=budget,
        skip_missing=True,
        incremental=incremental,
    )
    return result.outcome


def minimize_candidates(
    abstraction: Abstraction,
    trace: Trace,
    candidates: Sequence[str],
    budget: Optional[AtpgBudget] = None,
    incremental: bool = True,
) -> RefinementResult:
    """Phase 2: the greedy add-until-unsatisfiable / try-remove loop.

    Each candidate model is structurally fingerprinted, so with
    ``incremental`` the repeated trace-satisfiability probes on the same
    register set (add pass vs. removal pass, and across CEGAR
    iterations) reuse one pooled solver per model."""
    stats = RefinementStats(candidates=len(candidates), minimized=True)
    added: List[str] = []
    unsatisfiable = False
    runtime = budget.runtime if budget is not None else None
    for register in candidates:
        if runtime is not None:
            runtime.checkpoint(engine="refine")
        added.append(register)
        model = abstraction.with_registers(added)
        stats.atpg_calls += 1
        outcome = trace_satisfiable_on(model, trace, budget, incremental)
        if outcome is AtpgOutcome.UNSATISFIABLE:
            unsatisfiable = True
            break
        if outcome is AtpgOutcome.ABORTED:
            # Paper: without a definitive answer, keep every candidate.
            stats.selected = len(candidates)
            return RefinementResult(list(candidates), stats)
    if not unsatisfiable:
        stats.selected = len(added)
        return RefinementResult(added, stats)
    # Removal pass over all but the last-added register.
    kept = list(added)
    for register in added[:-1]:
        if runtime is not None:
            runtime.checkpoint(engine="refine")
        tentative = [r for r in kept if r != register]
        model = abstraction.with_registers(tentative)
        stats.atpg_calls += 1
        outcome = trace_satisfiable_on(model, trace, budget, incremental)
        if outcome is AtpgOutcome.UNSATISFIABLE:
            kept = tentative  # still invalid without it: drop for good
    stats.selected = len(kept)
    return RefinementResult(kept, stats)


def refine_from_trace(
    abstraction: Abstraction,
    trace: Trace,
    budget: Optional[AtpgBudget] = None,
    minimize: bool = True,
    fallback_count: int = 8,
    incremental: bool = True,
) -> RefinementResult:
    """The full Step 4: phase-1 candidates, then phase-2 minimization."""
    phase1 = crucial_register_candidates(
        abstraction,
        trace,
        fallback_count=fallback_count,
        runtime=budget.runtime if budget is not None else None,
    )
    if not phase1.registers:
        return phase1
    if not minimize:
        phase1.stats.selected = len(phase1.registers)
        return phase1
    result = minimize_candidates(
        abstraction, trace, phase1.registers, budget=budget,
        incremental=incremental,
    )
    result.stats.conflicts_found = phase1.stats.conflicts_found
    result.stats.candidates = phase1.stats.candidates
    return result
