"""The RFN abstraction-refinement loop (Sections 1-2).

Iterates the four steps until the property is verified on an abstract
model (then it holds on the original design, since abstract models are
subcircuits), falsified on the original design (via the guided ATPG of
Step 3), or a resource limit is exceeded:

1. generate/refine the abstract model (subcircuit of kept registers),
2. prove the property or find an error trace on the abstract model
   (forward fixpoint + the BDD-ATPG hybrid engine),
3. use the abstract error trace to guide sequential ATPG toward a
   concrete error trace on the original design,
4. analyze the abstract error trace (3-valued simulation + greedy
   sequential-ATPG minimization) to pick the refinement registers.

The BDD variable order found by dynamic reordering in one iteration seeds
the next iteration's manager (Section 2.2, last paragraph).

Resilience (see :mod:`repro.runtime`): every step runs under the
portfolio supervisor.  A step that exhausts its budget is retried with a
scaled budget, then handed to a fallback engine -- reachability falls
back to k-induction BMC on the abstract model (sound both ways: TRUE on
the abstract model implies TRUE on the design, FALSE yields an abstract
error trace for Steps 3-4), and the hybrid trace engine falls back to
bounded BMC at the hit ring's depth.  Only when the fallbacks fail too
does the run end in ``RESOURCE_OUT``, with the failing engine and
resource named in ``RfnResult.failure``.  The loop checkpoints its
refinement frontier after every iteration so ``--resume`` continues
instead of restarting.

Use :func:`rfn_verify` when you need the never-raises contract.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.atpg.engine import AtpgBudget
from repro.engine import Verdict
from repro.core.abstraction import Abstraction
from repro.core.guided import GuidedSearchResult, guided_concrete_search
from repro.core.hybrid import HybridEngineError, HybridTraceEngine
from repro.core.property import UnreachabilityProperty
from repro.core.refine import crucial_register_candidates, refine_from_trace
from repro.trace import Trace
from repro.mc.bmc import BmcOutcome, BmcResult, bmc
from repro.mc.encode import SymbolicEncoding
from repro.mc.images import ImageComputer
from repro.mc.reach import ReachLimits, ReachOutcome, forward_reach
from repro.netlist.circuit import Circuit
from repro.obs import tracer as obs
from repro.runtime.abort import ABORT_BY_RESOURCE, DepthOut, EngineAbort
from repro.runtime.budget import Budget
from repro.runtime.chaos import ChaosMonkey
from repro.runtime.checkpoint import RfnCheckpoint
from repro.runtime.supervisor import CONTAINED, AbortInfo, Supervisor


# The CEGAR loop reports through the canonical verdict algebra: a
# resource wall is Verdict.UNKNOWN with ``failure``/``detail`` saying
# which engine and which resource (checkpoint files keep recording the
# historical "resource_out" status string).


@dataclass
class RfnConfig:
    """Tuning knobs for one RFN run."""

    max_iterations: int = 64
    max_seconds: Optional[float] = None
    reach_limits: ReachLimits = field(default_factory=ReachLimits)
    atpg_budget: AtpgBudget = field(default_factory=AtpgBudget)
    refine_budget: AtpgBudget = field(
        default_factory=lambda: AtpgBudget(max_conflicts=50_000)
    )
    enable_guided_search: bool = True
    enable_minimization: bool = True
    guidance: bool = True  # cycle cubes for Step 3 (ablation knob)
    # Cap on COI gates x depth for Step 3's sequential ATPG; larger
    # instances use only the cheap trace-replay path (see guided.py).
    guided_max_gate_frames: Optional[int] = 2_000_000
    auto_reorder: bool = True
    # Seed each iteration's variable order with the order dynamic
    # reordering found in the previous one (Section 2.2, last paragraph).
    reuse_variable_order: bool = True
    fallback_candidates: int = 8
    guided_extra_depth: int = 0
    # Section-5 future work: try the overlapping-partition approximate
    # traversal before exact reachability once the abstract model has
    # more registers than one block holds (None = disabled).
    approx_block_size: Optional[int] = None
    approx_overlap: int = 2
    log: Optional[Callable[[str], None]] = None
    # --- resilience (repro.runtime) -----------------------------------
    #: run-level budget; its deadline/memory watermark is polled inside
    #: every engine's hot loop
    budget: Optional[Budget] = None
    #: deterministic fault injector wrapped around every supervised step
    chaos: Optional[ChaosMonkey] = None
    #: write the CEGAR state here after each iteration (for --resume)
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    #: supervised-step retries; each retry scales step budgets by
    #: ``retry_scale**attempt``
    max_retries: int = 1
    retry_scale: float = 2.0
    #: k-induction depth for the abstract-model BMC fallback of Step 2
    fallback_bmc_depth: int = 24
    #: run every SAT engine (BMC fallbacks, guided/refinement ATPG, the
    #: hybrid engine's justification calls) on the pooled incremental
    #: solver sessions; the CLI's --no-incremental escape hatch clears it
    incremental: bool = True
    #: >= 2 races Step 2 (bdd vs k-induction on the abstract model)
    #: across that many portfolio workers (``repro verify --jobs N``);
    #: 0/1 keeps the classic sequential supervised step.  Abstract error
    #: traces from the race are canonicalized, so the CEGAR loop's
    #: refinement decisions stay independent of which worker won.
    parallel: int = 0


@dataclass
class RfnIteration:
    """Per-iteration record (for reporting and the benchmark tables)."""

    index: int
    model_registers: int
    model_inputs: int
    model_gates: int
    reach_outcome: str = ""
    reach_iterations: int = 0
    bdd_nodes: int = 0  # manager allocation after Step 2
    abstract_trace_length: Optional[int] = None
    guided_method: str = ""
    refinement_added: int = 0
    seconds: float = 0.0
    #: comma-joined fallback engines that had to stand in this iteration
    fallbacks: str = ""

    @classmethod
    def from_json(cls, payload: Dict) -> "RfnIteration":
        names = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass
class RfnResult:
    status: Verdict
    prop: UnreachabilityProperty
    iterations: List[RfnIteration] = field(default_factory=list)
    kept_registers: List[str] = field(default_factory=list)
    abstract_model_registers: int = 0
    trace: Optional[Trace] = None
    abstract_trace: Optional[Trace] = None
    seconds: float = 0.0
    detail: str = ""
    # On VERIFIED (via exact fixpoint): the abstract model, its reached-set
    # BDD and the encoding that owns it -- an inductive invariant that
    # repro.core.certify can re-check with the SAT engine.
    abstract_model: Optional[Circuit] = None
    invariant = None  # Optional[Function]
    invariant_encoding = None  # Optional[SymbolicEncoding]
    # --- resilience ----------------------------------------------------
    #: the abort that forced RESOURCE_OUT (names engine and resource)
    failure: Optional[AbortInfo] = None
    #: every abort the supervisor contained along the way
    aborts: List[AbortInfo] = field(default_factory=list)
    #: where the final checkpoint was written, if checkpointing was on
    checkpoint_path: Optional[str] = None
    #: iterations replayed from a resumed checkpoint (prefix of
    #: ``iterations``)
    resumed_iterations: int = 0

    @property
    def verified(self) -> bool:
        return self.status is Verdict.VERIFIED

    @property
    def falsified(self) -> bool:
        return self.status is Verdict.FALSIFIED


class RFN:
    """One property-verification run of the RFN tool."""

    def __init__(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        config: Optional[RfnConfig] = None,
        resume: Optional[RfnCheckpoint] = None,
    ) -> None:
        self.circuit = circuit
        self.prop = prop
        self.config = config or RfnConfig()
        self.abstraction = Abstraction.initial(circuit, prop)
        self._saved_order: Optional[List[str]] = None
        self.supervisor = Supervisor(
            budget=self.config.budget,
            chaos=self.config.chaos,
            log=self.config.log,
            max_retries=self.config.max_retries,
            retry_scale=self.config.retry_scale,
        )
        self.iterations: List[RfnIteration] = []
        self._completed = 0  # refinement iterations already done
        self._prior_spent: Dict[str, float] = {}
        self._iter_span: Optional[obs.SpanHandle] = None
        if resume is not None:
            resume.validate_against(circuit, prop)
            self.abstraction.refine(resume.kept_registers)
            self._saved_order = list(resume.var_order) or None
            self._completed = resume.iteration
            self.iterations = [
                RfnIteration.from_json(rec) for rec in resume.iterations
            ]
            self._prior_spent = dict(resume.budget_spent)
            if self.config.budget is not None:
                self.config.budget.prior = dict(resume.budget_spent)
        self.resumed_iterations = len(self.iterations)

    def _log(self, message: str) -> None:
        obs.event("rfn.log", message=message)
        if self.config.log is not None:
            self.config.log(message)

    # -- iteration spans -----------------------------------------------
    # The loop body has many exit paths (finish() calls, contained and
    # escaping aborts), so the iteration span is held on the instance
    # and closed by finish()/the next iteration/rfn_verify rather than
    # lexically.  TRACER.close() force-flags anything that still leaks.

    def _open_iter_span(self, index: int, model: Circuit) -> None:
        self._close_iter_span()
        if obs.TRACER.enabled:
            self._iter_span = obs.TRACER.start(
                "rfn.iteration",
                {
                    "iter": index,
                    "registers": model.num_registers,
                    "gates": model.num_gates,
                },
            )

    def _close_iter_span(
        self,
        status: str = "",
        record: Optional[RfnIteration] = None,
    ) -> None:
        handle = self._iter_span
        if handle is None:
            return
        self._iter_span = None
        if status:
            handle.set(status=status)
        if record is not None:
            handle.set(
                engine=record.reach_outcome,
                refined=record.refinement_added,
            )
            if record.fallbacks:
                handle.set(fallbacks=record.fallbacks)
        handle.__exit__(None, None, None)

    def _race_abstract_check(self, model: Circuit):
        """Step 2 in parallel mode: race BDD reachability against
        k-induction on the abstract model.  Both are sound on abstract
        models (TRUE there implies TRUE on the design; FALSE yields an
        abstract error trace for Steps 3-4), so the first definite
        verdict wins.  Worker aborts land in the supervisor's ledger
        like any contained in-process failure."""
        # Lazy import: repro.parallel's rfn strategy imports this module.
        from repro.parallel.portfolio import race

        config = self.config
        outcome = race(
            model,
            self.prop,
            strategies=("bdd", "kinduction"),
            jobs=config.parallel,
            budget=config.budget,
            chaos=config.chaos,
            log=config.log,
            canonicalize=True,
        )
        self.supervisor.aborts.extend(outcome.aborts)
        return outcome

    # ------------------------------------------------------------------

    def _spent(self, elapsed: float) -> Dict[str, float]:
        budget = self.config.budget
        if budget is not None:
            return budget.spent()
        spent = dict(self._prior_spent)
        spent["seconds"] = round(
            float(spent.get("seconds", 0.0)) + elapsed, 4
        )
        return spent

    def save_checkpoint(
        self, status: str, elapsed: float
    ) -> Optional[str]:
        """Write the CEGAR state to ``config.checkpoint_path`` (no-op
        when checkpointing is off)."""
        path = self.config.checkpoint_path
        if path is None:
            return None
        ckpt = RfnCheckpoint(
            circuit_name=self.circuit.name or "",
            property_name=getattr(self.prop, "name", "") or "",
            target=dict(self.prop.target),
            iteration=self._completed,
            kept_registers=sorted(self.abstraction.kept_registers),
            var_order=list(self._saved_order or []),
            budget_spent=self._spent(elapsed),
            iterations=[asdict(rec) for rec in self.iterations],
            status=status,
        )
        ckpt.save(path)
        obs.event(
            "rfn.checkpoint",
            path=path,
            iteration=self._completed,
            status=status,
        )
        return path

    # ------------------------------------------------------------------

    def run(self) -> RfnResult:
        config = self.config
        supervisor = self.supervisor
        budget = config.budget
        start = time.monotonic()
        iterations = self.iterations

        def finish(
            status: Verdict,
            trace: Optional[Trace] = None,
            abstract_trace: Optional[Trace] = None,
            detail: str = "",
            failure: Optional[AbortInfo] = None,
        ) -> RfnResult:
            elapsed = time.monotonic() - start
            # Checkpoint files keep their historical status vocabulary:
            # a definite verdict records its wire string, anything else
            # records "resource_out".
            ckpt_status = status.value if status.definite else "resource_out"
            self._close_iter_span(
                ckpt_status, iterations[-1] if iterations else None
            )
            path = self.save_checkpoint(ckpt_status, elapsed)
            if failure is not None and not detail:
                detail = failure.describe()
            return RfnResult(
                status=status,
                prop=self.prop,
                iterations=iterations,
                kept_registers=sorted(self.abstraction.kept_registers),
                abstract_model_registers=len(self.abstraction.kept_registers),
                trace=trace,
                abstract_trace=abstract_trace,
                seconds=elapsed,
                detail=detail,
                failure=failure,
                aborts=list(supervisor.aborts),
                checkpoint_path=path,
                resumed_iterations=self.resumed_iterations,
            )

        for index in range(self._completed + 1, config.max_iterations + 1):
            if config.max_seconds is not None and (
                time.monotonic() - start > config.max_seconds
            ):
                return finish(Verdict.UNKNOWN, detail="time limit")
            if budget is not None:
                try:
                    budget.checkpoint(engine="rfn")
                except EngineAbort as abort:
                    return finish(
                        Verdict.UNKNOWN,
                        failure=AbortInfo.from_exception("rfn", abort),
                    )
            iter_start = time.monotonic()
            model = self.abstraction.model
            record = RfnIteration(
                index=index,
                model_registers=model.num_registers,
                model_inputs=model.num_inputs,
                model_gates=model.num_gates,
            )
            iterations.append(record)
            self._open_iter_span(index, model)
            self._log(
                f"[iter {index}] abstract model: "
                f"{model.num_registers} regs, {model.num_inputs} inputs, "
                f"{model.num_gates} gates"
            )

            # Step 2: prove or find an abstract error trace.
            abstract_trace: Optional[Trace] = None
            encoding: Optional[SymbolicEncoding] = None
            if config.parallel >= 2:
                outcome = self._race_abstract_check(model)
                record.reach_outcome = f"race_{outcome.verdict}"
                if outcome.verified:
                    record.seconds = time.monotonic() - iter_start
                    self._log(
                        f"[iter {index}] portfolio race "
                        f"({outcome.winner}) proved the abstract model: "
                        f"property VERIFIED"
                    )
                    verdict = finish(Verdict.VERIFIED)
                    verdict.abstract_model = model
                    return verdict
                if not outcome.falsified:
                    record.seconds = time.monotonic() - iter_start
                    failure = (
                        outcome.aborts[-1]
                        if outcome.aborts
                        else AbortInfo(
                            engine="portfolio",
                            resource="race",
                            detail="no strategy reached a verdict",
                        )
                    )
                    return finish(
                        Verdict.UNKNOWN,
                        detail=(
                            "abstract-model race inconclusive: "
                            f"{failure.describe()}"
                        ),
                        failure=failure,
                    )
                abstract_trace = outcome.trace
                self._log(
                    f"[iter {index}] portfolio race ({outcome.winner}) "
                    f"found an abstract error trace of length "
                    f"{abstract_trace.length}"
                )
            else:
                encoding = SymbolicEncoding(model, var_order=self._saved_order)
                encoding.bdd.auto_reorder = config.auto_reorder
                images = ImageComputer(encoding)
                target = encoding.state_cube(dict(self.prop.target))
                if (
                    config.approx_block_size is not None
                    and model.num_registers > config.approx_block_size
                ):
                    from repro.mc.approx import ApproxOutcome, approximate_check

                    approx = approximate_check(
                        encoding,
                        target,
                        block_size=config.approx_block_size,
                        overlap=config.approx_overlap,
                        limits=config.reach_limits,
                    )
                    if approx.outcome is ApproxOutcome.PROVED:
                        record.reach_outcome = "approx_proved"
                        record.seconds = time.monotonic() - iter_start
                        self._log(
                            f"[iter {index}] overlapping-partition traversal "
                            f"proved the property ({len(approx.blocks)} blocks, "
                            f"{approx.passes} passes)"
                        )
                        return finish(Verdict.VERIFIED)

                def reach_step(attempt: int):
                    limits = config.reach_limits
                    if attempt > 0:
                        scale = config.retry_scale ** attempt
                        limits = replace(
                            limits,
                            max_iterations=(
                                None
                                if limits.max_iterations is None
                                else int(limits.max_iterations * scale)
                            ),
                            max_nodes=(
                                None
                                if limits.max_nodes is None
                                else int(limits.max_nodes * scale)
                            ),
                            max_seconds=(
                                None
                                if limits.max_seconds is None
                                else limits.max_seconds * scale
                            ),
                        )
                    if budget is not None and limits.budget is None:
                        limits = replace(limits, budget=budget)
                    reach = forward_reach(
                        images,
                        encoding.initial_states(),
                        target=target,
                        limits=limits,
                        step_hook=lambda _i, _r: encoding.bdd.maybe_sift(),
                    )
                    if reach.outcome is ReachOutcome.RESOURCE_OUT:
                        resource = reach.abort_resource or "nodes"
                        abort_cls = ABORT_BY_RESOURCE.get(resource, EngineAbort)
                        raise abort_cls(
                            f"reachability out of {resource} after "
                            f"{reach.iterations} image steps",
                            engine="reach",
                            resource=resource,
                        )
                    return reach

                def reach_fallback(_attempt: int):
                    # k-induction BMC on the abstract model.  Sound both ways:
                    # TRUE on an abstract model implies TRUE on the design,
                    # FALSE yields an abstract error trace for Steps 3-4.
                    result = bmc(
                        model,
                        self.prop,
                        max_depth=config.fallback_bmc_depth,
                        max_conflicts=config.atpg_budget.max_conflicts,
                        induction=True,
                        unique_states=True,
                        budget=budget,
                        incremental=config.incremental,
                    )
                    if result.outcome is BmcOutcome.UNKNOWN:
                        raise DepthOut(
                            f"abstract-model BMC inconclusive at depth "
                            f"{config.fallback_bmc_depth}",
                            engine="abstract-bmc",
                        )
                    return result

                step = supervisor.attempt(
                    "reach",
                    reach_step,
                    fallback=reach_fallback,
                    fallback_name="abstract-bmc",
                )
                record.bdd_nodes = encoding.bdd.total_nodes()
                if not step.ok:
                    record.reach_outcome = "resource_out"
                    record.seconds = time.monotonic() - iter_start
                    return finish(
                        Verdict.UNKNOWN,
                        detail=(
                            "reachability resource limit on abstract model: "
                            f"{step.abort.describe()}"
                        ),
                        failure=step.abort,
                    )

                abstract_trace: Optional[Trace] = None
                reach = None
                if step.fell_back:
                    record.fallbacks = "abstract-bmc"
                    bmc_result: BmcResult = step.value
                    if bmc_result.outcome is BmcOutcome.TRUE:
                        record.reach_outcome = "bmc_induction_true"
                        record.seconds = time.monotonic() - iter_start
                        self._log(
                            f"[iter {index}] abstract-model k-induction "
                            f"closed at depth {bmc_result.induction_depth}: "
                            f"property VERIFIED"
                        )
                        verdict = finish(Verdict.VERIFIED)
                        verdict.abstract_model = model
                        return verdict
                    record.reach_outcome = "bmc_counterexample"
                    abstract_trace = bmc_result.trace
                    self._log(
                        f"[iter {index}] reachability degraded to abstract "
                        f"BMC: counterexample at depth {bmc_result.depth}"
                    )
                else:
                    reach = step.value
                    record.reach_outcome = reach.outcome.value
                    record.reach_iterations = reach.iterations
                    record.bdd_nodes = encoding.bdd.total_nodes()
                    if reach.outcome is ReachOutcome.FIXPOINT:
                        record.seconds = time.monotonic() - iter_start
                        self._log(
                            f"[iter {index}] fixpoint: property VERIFIED"
                        )
                        verdict = finish(Verdict.VERIFIED)
                        verdict.abstract_model = model
                        verdict.invariant = reach.reached
                        verdict.invariant_encoding = encoding
                        return verdict

                if abstract_trace is None:

                    def hybrid_step(attempt: int):
                        scale = config.retry_scale ** attempt
                        atpg_budget = config.atpg_budget
                        if attempt > 0:
                            atpg_budget = replace(
                                atpg_budget,
                                max_conflicts=(
                                    None
                                    if atpg_budget.max_conflicts is None
                                    else int(atpg_budget.max_conflicts * scale)
                                ),
                            )
                        hybrid = HybridTraceEngine(
                            model,
                            encoding,
                            images,
                            atpg_budget=atpg_budget,
                            max_cube_tries=int(256 * scale),
                            budget=budget,
                            incremental=config.incremental,
                        )
                        self._hybrid_stats = hybrid.stats
                        try:
                            return hybrid.build_trace(reach, target)
                        except HybridEngineError as error:
                            raise EngineAbort(
                                str(error), engine="hybrid", resource="cubes"
                            ) from error

                    def hybrid_fallback(_attempt: int):
                        # Bounded BMC on the abstract model, depth-limited by
                        # the ring that hit the target.
                        result = bmc(
                            model,
                            self.prop,
                            max_depth=reach.hit_ring,
                            max_conflicts=config.atpg_budget.max_conflicts,
                            induction=False,
                            budget=budget,
                            incremental=config.incremental,
                        )
                        if result.outcome is not BmcOutcome.FALSE:
                            raise DepthOut(
                                f"bounded abstract BMC found no trace within "
                                f"the hit ring depth {reach.hit_ring}",
                                engine="hybrid-bmc",
                            )
                        return result.trace

                    step = supervisor.attempt(
                        "hybrid",
                        hybrid_step,
                        validate=lambda t: (
                            isinstance(t, Trace)
                            and 0 < t.length <= reach.hit_ring + 1
                        ),
                        fallback=hybrid_fallback,
                        fallback_name="hybrid-bmc",
                    )
                    if not step.ok:
                        record.seconds = time.monotonic() - iter_start
                        return finish(
                            Verdict.UNKNOWN,
                            detail=f"hybrid engine: {step.abort.describe()}",
                            failure=step.abort,
                        )
                    abstract_trace = step.value
                    if step.fell_back:
                        record.fallbacks = (
                            f"{record.fallbacks},hybrid-bmc"
                            if record.fallbacks
                            else "hybrid-bmc"
                        )
                        self._log(
                            f"[iter {index}] hybrid engine degraded to "
                            f"bounded abstract BMC"
                        )
                    else:
                        hybrid_stats = self._hybrid_stats
                        self._log(
                            f"[iter {index}] abstract error trace of length "
                            f"{abstract_trace.length} "
                            f"(min-cut {hybrid_stats.mincut_inputs} vs model "
                            f"{hybrid_stats.model_inputs} inputs)"
                        )

            record.abstract_trace_length = abstract_trace.length
            if config.reuse_variable_order and encoding is not None:
                self._saved_order = encoding.saved_order()

            # Step 3: guided search on the original design.
            if config.enable_guided_search:

                def guided_step(_attempt: int):
                    return guided_concrete_search(
                        self.circuit,
                        self.prop,
                        [abstract_trace],
                        budget=replace(config.atpg_budget, runtime=budget),
                        use_guidance=config.guidance,
                        extra_depth=config.guided_extra_depth,
                        max_gate_frames=config.guided_max_gate_frames,
                        incremental=config.incremental,
                    )

                step = supervisor.attempt("guided", guided_step, retries=0)
                if step.ok:
                    guided: GuidedSearchResult = step.value
                    record.guided_method = guided.method
                    if guided.found:
                        record.seconds = time.monotonic() - iter_start
                        self._log(
                            f"[iter {index}] concrete error trace found "
                            f"via {guided.method}: property FALSIFIED"
                        )
                        return finish(
                            Verdict.FALSIFIED,
                            trace=guided.trace,
                            abstract_trace=abstract_trace,
                        )
                elif supervisor.budget_exhausted:
                    record.seconds = time.monotonic() - iter_start
                    return finish(
                        Verdict.UNKNOWN,
                        abstract_trace=abstract_trace,
                        detail=f"guided search: {step.abort.describe()}",
                        failure=step.abort,
                    )
                else:
                    # A contained guided-search failure is not fatal:
                    # refinement can proceed without a concrete verdict.
                    record.guided_method = "aborted"

            # Step 4: refine.
            def refine_step(attempt: int):
                refine_budget = replace(
                    config.refine_budget, runtime=budget
                )
                if attempt > 0:
                    scale = config.retry_scale ** attempt
                    refine_budget = replace(
                        refine_budget,
                        max_conflicts=(
                            None
                            if refine_budget.max_conflicts is None
                            else int(refine_budget.max_conflicts * scale)
                        ),
                    )
                return refine_from_trace(
                    self.abstraction,
                    abstract_trace,
                    budget=refine_budget,
                    minimize=config.enable_minimization,
                    fallback_count=config.fallback_candidates,
                    incremental=config.incremental,
                )

            def refine_fallback(_attempt: int):
                # Phase 1 only: 3-valued-simulation candidates without the
                # ATPG minimization loop (cheap and always terminates).
                return crucial_register_candidates(
                    self.abstraction,
                    abstract_trace,
                    fallback_count=config.fallback_candidates,
                )

            step = supervisor.attempt(
                "refine",
                refine_step,
                fallback=refine_fallback,
                fallback_name="refine-phase1",
            )
            if not step.ok:
                record.seconds = time.monotonic() - iter_start
                return finish(
                    Verdict.UNKNOWN,
                    abstract_trace=abstract_trace,
                    detail=f"refinement: {step.abort.describe()}",
                    failure=step.abort,
                )
            refinement = step.value
            if step.fell_back:
                record.fallbacks = (
                    f"{record.fallbacks},refine-phase1"
                    if record.fallbacks
                    else "refine-phase1"
                )
            added = self.abstraction.refine(refinement.registers)
            record.refinement_added = added
            record.seconds = time.monotonic() - iter_start
            self._log(
                f"[iter {index}] refinement: {refinement.stats.candidates} "
                f"candidates -> {len(refinement.registers)} selected "
                f"({added} new)"
            )
            if added == 0:
                # No progress: fall back to every pseudo-input register the
                # trace mentions, then give up if still stuck.
                frequency = abstract_trace.assigned_signals()
                fallback = [
                    reg
                    for reg in self.abstraction.pseudo_input_registers()
                    if reg in frequency
                ]
                added = self.abstraction.refine(fallback)
                record.refinement_added = added
                if added == 0:
                    return finish(
                        Verdict.UNKNOWN,
                        abstract_trace=abstract_trace,
                        detail=(
                            "refinement made no progress (abstract trace "
                            "could not be invalidated)"
                        ),
                    )
            self._completed = index
            self._close_iter_span("refined", record)
            if (
                config.checkpoint_path is not None
                and index % max(1, config.checkpoint_every) == 0
            ):
                self.save_checkpoint(
                    "in_progress", time.monotonic() - start
                )
        return finish(Verdict.UNKNOWN, detail="iteration limit")


def rfn_verify(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    config: Optional[RfnConfig] = None,
    *,
    resume: Optional[RfnCheckpoint] = None,
    observer: Optional[Callable[["RFN"], None]] = None,
) -> RfnResult:
    """Run RFN with the never-raises contract.

    Any exception short of ``KeyboardInterrupt`` -- an
    :class:`~repro.runtime.abort.EngineAbort` escaping an unsupervised
    code path, a ``MemoryError``, an engine crash -- is converted into a
    structured ``RESOURCE_OUT`` result whose ``failure`` names the
    engine and resource, with whatever iterations completed attached.

    ``observer``, if given, is called with the constructed :class:`RFN`
    before the run starts, so callers that may be interrupted (the CLI)
    can still reach the partial iteration records and save a checkpoint.
    """
    config = config or RfnConfig()
    rfn = RFN(circuit, prop, config, resume=resume)
    if observer is not None:
        observer(rfn)
    start = time.monotonic()
    try:
        return rfn.run()
    except KeyboardInterrupt:
        raise
    except CONTAINED as error:
        engine = rfn.supervisor.current_engine or "rfn"
        failure = AbortInfo.from_exception(engine, error)
    except Exception as error:
        failure = AbortInfo(
            engine=rfn.supervisor.current_engine or "rfn",
            resource="crash",
            detail=f"{type(error).__name__}: {error}",
        )
    # An abort escaped mid-iteration: close its span with the failure
    # recorded, so traces stay well-formed even on contained crashes.
    rfn._close_iter_span(f"resource_out:{failure.resource}")
    elapsed = time.monotonic() - start
    path = None
    try:
        path = rfn.save_checkpoint("resource_out", elapsed)
    except OSError:
        pass
    return RfnResult(
        status=Verdict.UNKNOWN,
        prop=prop,
        iterations=list(rfn.iterations),
        kept_registers=sorted(rfn.abstraction.kept_registers),
        abstract_model_registers=len(rfn.abstraction.kept_registers),
        seconds=elapsed,
        detail=failure.describe(),
        failure=failure,
        aborts=list(rfn.supervisor.aborts),
        checkpoint_path=path,
        resumed_iterations=rfn.resumed_iterations,
    )
