"""The RFN abstraction-refinement loop (Sections 1-2).

Iterates the four steps until the property is verified on an abstract
model (then it holds on the original design, since abstract models are
subcircuits), falsified on the original design (via the guided ATPG of
Step 3), or a resource limit is exceeded:

1. generate/refine the abstract model (subcircuit of kept registers),
2. prove the property or find an error trace on the abstract model
   (forward fixpoint + the BDD-ATPG hybrid engine),
3. use the abstract error trace to guide sequential ATPG toward a
   concrete error trace on the original design,
4. analyze the abstract error trace (3-valued simulation + greedy
   sequential-ATPG minimization) to pick the refinement registers.

The BDD variable order found by dynamic reordering in one iteration seeds
the next iteration's manager (Section 2.2, last paragraph).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.atpg.engine import AtpgBudget
from repro.core.abstraction import Abstraction
from repro.core.guided import GuidedSearchResult, guided_concrete_search
from repro.core.hybrid import HybridEngineError, HybridTraceEngine
from repro.core.property import UnreachabilityProperty
from repro.core.refine import refine_from_trace
from repro.trace import Trace
from repro.mc.encode import SymbolicEncoding
from repro.mc.images import ImageComputer
from repro.mc.reach import ReachLimits, ReachOutcome, forward_reach
from repro.netlist.circuit import Circuit


class RfnStatus(enum.Enum):
    VERIFIED = "verified"  # property True on the original design
    FALSIFIED = "falsified"  # concrete error trace found
    RESOURCE_OUT = "resource_out"


@dataclass
class RfnConfig:
    """Tuning knobs for one RFN run."""

    max_iterations: int = 64
    max_seconds: Optional[float] = None
    reach_limits: ReachLimits = field(default_factory=ReachLimits)
    atpg_budget: AtpgBudget = field(default_factory=AtpgBudget)
    refine_budget: AtpgBudget = field(
        default_factory=lambda: AtpgBudget(max_conflicts=50_000)
    )
    enable_guided_search: bool = True
    enable_minimization: bool = True
    guidance: bool = True  # cycle cubes for Step 3 (ablation knob)
    # Cap on COI gates x depth for Step 3's sequential ATPG; larger
    # instances use only the cheap trace-replay path (see guided.py).
    guided_max_gate_frames: Optional[int] = 2_000_000
    auto_reorder: bool = True
    # Seed each iteration's variable order with the order dynamic
    # reordering found in the previous one (Section 2.2, last paragraph).
    reuse_variable_order: bool = True
    fallback_candidates: int = 8
    guided_extra_depth: int = 0
    # Section-5 future work: try the overlapping-partition approximate
    # traversal before exact reachability once the abstract model has
    # more registers than one block holds (None = disabled).
    approx_block_size: Optional[int] = None
    approx_overlap: int = 2
    log: Optional[callable] = None  # def log(message: str)


@dataclass
class RfnIteration:
    """Per-iteration record (for reporting and the benchmark tables)."""

    index: int
    model_registers: int
    model_inputs: int
    model_gates: int
    reach_outcome: str = ""
    reach_iterations: int = 0
    bdd_nodes: int = 0  # manager allocation after Step 2
    abstract_trace_length: Optional[int] = None
    guided_method: str = ""
    refinement_added: int = 0
    seconds: float = 0.0


@dataclass
class RfnResult:
    status: RfnStatus
    prop: UnreachabilityProperty
    iterations: List[RfnIteration] = field(default_factory=list)
    kept_registers: List[str] = field(default_factory=list)
    abstract_model_registers: int = 0
    trace: Optional[Trace] = None
    abstract_trace: Optional[Trace] = None
    seconds: float = 0.0
    detail: str = ""
    # On VERIFIED (via exact fixpoint): the abstract model, its reached-set
    # BDD and the encoding that owns it -- an inductive invariant that
    # repro.core.certify can re-check with the SAT engine.
    abstract_model: Optional[Circuit] = None
    invariant = None  # Optional[Function]
    invariant_encoding = None  # Optional[SymbolicEncoding]

    @property
    def verified(self) -> bool:
        return self.status is RfnStatus.VERIFIED

    @property
    def falsified(self) -> bool:
        return self.status is RfnStatus.FALSIFIED


class RFN:
    """One property-verification run of the RFN tool."""

    def __init__(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        config: Optional[RfnConfig] = None,
    ) -> None:
        self.circuit = circuit
        self.prop = prop
        self.config = config or RfnConfig()
        self.abstraction = Abstraction.initial(circuit, prop)
        self._saved_order: Optional[List[str]] = None

    def _log(self, message: str) -> None:
        if self.config.log is not None:
            self.config.log(message)

    # ------------------------------------------------------------------

    def run(self) -> RfnResult:
        config = self.config
        start = time.monotonic()
        iterations: List[RfnIteration] = []

        def finish(
            status: RfnStatus,
            trace: Optional[Trace] = None,
            abstract_trace: Optional[Trace] = None,
            detail: str = "",
        ) -> RfnResult:
            return RfnResult(
                status=status,
                prop=self.prop,
                iterations=iterations,
                kept_registers=sorted(self.abstraction.kept_registers),
                abstract_model_registers=len(self.abstraction.kept_registers),
                trace=trace,
                abstract_trace=abstract_trace,
                seconds=time.monotonic() - start,
                detail=detail,
            )

        for index in range(1, config.max_iterations + 1):
            if config.max_seconds is not None and (
                time.monotonic() - start > config.max_seconds
            ):
                return finish(RfnStatus.RESOURCE_OUT, detail="time limit")
            iter_start = time.monotonic()
            model = self.abstraction.model
            record = RfnIteration(
                index=index,
                model_registers=model.num_registers,
                model_inputs=model.num_inputs,
                model_gates=model.num_gates,
            )
            iterations.append(record)
            self._log(
                f"[iter {index}] abstract model: "
                f"{model.num_registers} regs, {model.num_inputs} inputs, "
                f"{model.num_gates} gates"
            )

            # Step 2: prove or find an abstract error trace.
            encoding = SymbolicEncoding(model, var_order=self._saved_order)
            encoding.bdd.auto_reorder = config.auto_reorder
            images = ImageComputer(encoding)
            target = encoding.state_cube(dict(self.prop.target))
            if (
                config.approx_block_size is not None
                and model.num_registers > config.approx_block_size
            ):
                from repro.mc.approx import ApproxOutcome, approximate_check

                approx = approximate_check(
                    encoding,
                    target,
                    block_size=config.approx_block_size,
                    overlap=config.approx_overlap,
                    limits=config.reach_limits,
                )
                if approx.outcome is ApproxOutcome.PROVED:
                    record.reach_outcome = "approx_proved"
                    record.seconds = time.monotonic() - iter_start
                    self._log(
                        f"[iter {index}] overlapping-partition traversal "
                        f"proved the property ({len(approx.blocks)} blocks, "
                        f"{approx.passes} passes)"
                    )
                    return finish(RfnStatus.VERIFIED)
            reach = forward_reach(
                images,
                encoding.initial_states(),
                target=target,
                limits=config.reach_limits,
                step_hook=lambda _i, _r: encoding.bdd.maybe_sift(),
            )
            record.reach_outcome = reach.outcome.value
            record.reach_iterations = reach.iterations
            record.bdd_nodes = encoding.bdd.total_nodes()
            if reach.outcome is ReachOutcome.FIXPOINT:
                record.seconds = time.monotonic() - iter_start
                self._log(f"[iter {index}] fixpoint: property VERIFIED")
                verdict = finish(RfnStatus.VERIFIED)
                verdict.abstract_model = model
                verdict.invariant = reach.reached
                verdict.invariant_encoding = encoding
                return verdict
            if reach.outcome is ReachOutcome.RESOURCE_OUT:
                record.seconds = time.monotonic() - iter_start
                return finish(
                    RfnStatus.RESOURCE_OUT,
                    detail="reachability resource limit on abstract model",
                )

            try:
                hybrid = HybridTraceEngine(
                    model, encoding, images, atpg_budget=config.atpg_budget
                )
                abstract_trace = hybrid.build_trace(reach, target)
            except HybridEngineError as error:
                record.seconds = time.monotonic() - iter_start
                return finish(
                    RfnStatus.RESOURCE_OUT,
                    detail=f"hybrid engine: {error}",
                )
            record.abstract_trace_length = abstract_trace.length
            self._log(
                f"[iter {index}] abstract error trace of length "
                f"{abstract_trace.length} "
                f"(min-cut {hybrid.stats.mincut_inputs} vs model "
                f"{hybrid.stats.model_inputs} inputs)"
            )
            if config.reuse_variable_order:
                self._saved_order = encoding.saved_order()

            # Step 3: guided search on the original design.
            if config.enable_guided_search:
                guided = guided_concrete_search(
                    self.circuit,
                    self.prop,
                    [abstract_trace],
                    budget=config.atpg_budget,
                    use_guidance=config.guidance,
                    extra_depth=config.guided_extra_depth,
                    max_gate_frames=config.guided_max_gate_frames,
                )
                record.guided_method = guided.method
                if guided.found:
                    record.seconds = time.monotonic() - iter_start
                    self._log(
                        f"[iter {index}] concrete error trace found via "
                        f"{guided.method}: property FALSIFIED"
                    )
                    return finish(
                        RfnStatus.FALSIFIED,
                        trace=guided.trace,
                        abstract_trace=abstract_trace,
                    )

            # Step 4: refine.
            refinement = refine_from_trace(
                self.abstraction,
                abstract_trace,
                budget=config.refine_budget,
                minimize=config.enable_minimization,
                fallback_count=config.fallback_candidates,
            )
            added = self.abstraction.refine(refinement.registers)
            record.refinement_added = added
            record.seconds = time.monotonic() - iter_start
            self._log(
                f"[iter {index}] refinement: {refinement.stats.candidates} "
                f"candidates -> {len(refinement.registers)} selected "
                f"({added} new)"
            )
            if added == 0:
                # No progress: fall back to every pseudo-input register the
                # trace mentions, then give up if still stuck.
                frequency = abstract_trace.assigned_signals()
                fallback = [
                    reg
                    for reg in self.abstraction.pseudo_input_registers()
                    if reg in frequency
                ]
                added = self.abstraction.refine(fallback)
                record.refinement_added = added
                if added == 0:
                    return finish(
                        RfnStatus.RESOURCE_OUT,
                        abstract_trace=abstract_trace,
                        detail=(
                            "refinement made no progress (abstract trace "
                            "could not be invalidated)"
                        ),
                    )
        return finish(RfnStatus.RESOURCE_OUT, detail="iteration limit")
