"""Abstract-trace-guided search for concrete error traces (Step 3).

RFN never runs symbolic image computation on the original design.  To
falsify a property it instead:

1. checks whether the abstract error trace is already concrete (only
   assigns primary inputs of the original design) -- then a cheap
   simulation replay settles it;
2. otherwise runs *guided* sequential ATPG on the (COI-reduced) original
   design: the abstract trace's length bounds the search depth (the
   shortest concrete error trace can only be longer) and its cycle cubes
   become per-cycle constraint cubes that prune the ATPG search --
   "sequential ATPG with guidance can search for an order of magnitude
   more cycles" (Section 2.3).

The future-work extension of Section 5 (guiding with a *set* of traces)
is supported: pass several candidate traces and each is tried in turn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.atpg.engine import AtpgBudget, AtpgOutcome, AtpgResult, sequential_atpg
from repro.core.property import UnreachabilityProperty
from repro.trace import Trace
from repro.netlist.circuit import Circuit
from repro.netlist.ops import coi_registers, extract_subcircuit
from repro.sim.logic3 import ONE, X
from repro.sim.simulator import Simulator


@dataclass
class GuidedSearchResult:
    found: bool
    trace: Optional[Trace] = None
    method: str = ""  # "direct-replay" | "guided-atpg" | "unguided-atpg"
    outcome: Optional[AtpgOutcome] = None
    conflicts: int = 0


def trace_is_concrete(original: Circuit, trace: Trace) -> bool:
    """Does the abstract trace assign only primary inputs of the original
    design?  (Then it is already an input sequence for the original,
    Section 2.3.)"""
    return all(
        original.is_input(sig)
        for cycle in range(trace.length)
        for sig in trace.cube_at(cycle)
    )


def replay_trace(
    original: Circuit,
    prop: UnreachabilityProperty,
    trace: Trace,
) -> Optional[Trace]:
    """Simulate the trace's input cubes on the original design from reset;
    returns a concrete error trace if a bad state is visited.

    Unassigned inputs are driven to 0 (any completion of a concrete input
    trace is as good as another for replay purposes); the check itself is
    a plain 2-valued simulation.
    """
    sim = Simulator(original)
    state = sim.initial_state(default=0)
    states: List[dict] = []
    inputs: List[dict] = []
    for cycle in range(trace.length):
        vector = {name: 0 for name in original.inputs}
        vector.update(
            {
                name: value
                for name, value in trace.inputs[cycle].items()
                if original.is_input(name)
            }
        )
        states.append(dict(state))
        inputs.append(vector)
        values, state = sim.step(state, vector)
        if prop.holds_in_state(values):
            return Trace(states=states, inputs=inputs,
                         circuit_name=original.name)
    return None


def guided_concrete_search(
    original: Circuit,
    prop: UnreachabilityProperty,
    traces: Sequence[Trace],
    budget: Optional[AtpgBudget] = None,
    use_guidance: bool = True,
    extra_depth: int = 0,
    max_gate_frames: Optional[int] = None,
    incremental: bool = True,
) -> GuidedSearchResult:
    """Step 3: search for an error trace on the original design.

    ``traces`` are abstract error traces, most promising first.  With
    ``use_guidance`` disabled the ATPG runs with only the depth bound
    (the ablation baseline for the guidance claim).

    ``max_gate_frames`` caps the unrolled instance size (COI gates x
    depth) handed to sequential ATPG; beyond it only the cheap replay
    path runs.  This keeps paper-scale designs (tens of thousands of COI
    gates) moving through the CEGAR loop instead of stalling in one
    enormous SAT instance -- their bugs are still found once the abstract
    trace becomes concrete enough to replay.
    """
    budget = budget or AtpgBudget()
    coi = coi_registers(original, prop.signals())
    reduced = extract_subcircuit(
        original, coi, prop.signals(), name=f"{original.name}.coi"
    )
    total_conflicts = 0
    result = None
    for trace in traces:
        if budget.runtime is not None:
            budget.runtime.checkpoint(engine="guided")
        # Cheap path first: direct replay of concrete traces.
        concrete = replay_trace(original, prop, trace)
        if concrete is not None:
            return GuidedSearchResult(
                True, trace=concrete, method="direct-replay"
            )
        depth = trace.length + extra_depth
        if (
            max_gate_frames is not None
            and reduced.num_gates * depth > max_gate_frames
        ):
            continue
        cubes = {}
        if use_guidance:
            cubes = {
                cycle: {
                    name: value
                    for name, value in trace.cube_at(cycle).items()
                    if reduced.is_defined(name)
                }
                for cycle in range(trace.length)
            }
        cubes.setdefault(depth - 1, {}).update(prop.target)
        result = sequential_atpg(
            reduced,
            depth,
            cubes,
            budget=budget,
            skip_missing=True,
            incremental=incremental,
        )
        total_conflicts += result.conflicts
        if result.outcome is AtpgOutcome.TRACE_FOUND:
            full = _lift_trace(original, reduced, result.trace)
            return GuidedSearchResult(
                True,
                trace=full,
                method="guided-atpg" if use_guidance else "unguided-atpg",
                outcome=result.outcome,
                conflicts=total_conflicts,
            )
    return GuidedSearchResult(
        False,
        method="guided-atpg" if use_guidance else "unguided-atpg",
        outcome=result.outcome if result is not None else None,
        conflicts=total_conflicts,
    )


def _lift_trace(original: Circuit, reduced: Circuit, trace: Trace) -> Trace:
    """Extend a COI-subcircuit trace to the original design: inputs outside
    the COI are driven to 0, registers outside evolve from their reset
    values under simulation."""
    sim = Simulator(original)
    state = sim.initial_state(default=0)
    state.update(
        {
            name: value
            for name, value in trace.states[0].items()
            if original.is_register_output(name)
        }
    )
    states: List[dict] = []
    inputs: List[dict] = []
    for cycle in range(trace.length):
        vector = {name: 0 for name in original.inputs}
        vector.update(
            {
                name: value
                for name, value in trace.inputs[cycle].items()
                if original.is_input(name)
            }
        )
        states.append(dict(state))
        inputs.append(vector)
        _, state = sim.step(state, vector)
    return Trace(states=states, inputs=inputs, circuit_name=original.name)
