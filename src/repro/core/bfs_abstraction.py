"""The BFS abstraction method of Ho et al. [8] (Table 2 baseline).

Given a set of coverage signals and a register budget ``k``, the BFS
method uses purely *topological* information: it keeps the ``k`` registers
closest to the coverage signals in the register dependency graph, builds
the min-cut subcircuit around them, and runs one forward fixpoint on that
subcircuit.  RFN's trace-driven refinement is compared against this
baseline in the paper's unreachable-coverage-state experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.netlist.circuit import Circuit
from repro.netlist.ops import (
    coi_registers,
    extract_subcircuit,
    register_dependency_graph,
    support_of,
)


@dataclass
class BfsAbstractionResult:
    model: Circuit
    registers: List[str]  # the k closest registers, in BFS order


def closest_registers(
    circuit: Circuit,
    signals: Iterable[str],
    k: int,
) -> List[str]:
    """The ``k`` registers closest to ``signals``: breadth-first over the
    register dependency graph, seeded with the registers the signals
    combinationally depend on (and the signals that are registers)."""
    graph = register_dependency_graph(circuit)
    seeds: List[str] = []
    seen: Set[str] = set()

    def add_seed(reg: str) -> None:
        if reg not in seen:
            seen.add(reg)
            seeds.append(reg)

    for sig in signals:
        if circuit.is_register_output(sig):
            add_seed(sig)
    for sig in support_of(circuit, list(signals)):
        if circuit.is_register_output(sig):
            add_seed(sig)

    order: List[str] = []
    queue = deque(seeds)
    while queue and len(order) < k:
        reg = queue.popleft()
        order.append(reg)
        for dep in sorted(graph[reg]):
            if dep not in seen:
                seen.add(dep)
                queue.append(dep)
    return order


def bfs_abstract_model(
    circuit: Circuit,
    signals: Sequence[str],
    k: int,
    name: Optional[str] = None,
) -> BfsAbstractionResult:
    """The BFS method's abstract model: the subcircuit of the ``k``
    topologically closest registers (the paper then min-cuts it before
    image computation; our symbolic engine quantifies inputs early, so the
    plain subcircuit is the honest equivalent)."""
    registers = closest_registers(circuit, signals, k)
    model = extract_subcircuit(
        circuit,
        registers,
        [s for s in signals if circuit.is_defined(s)],
        name=name or f"{circuit.name}.bfs{k}",
    )
    return BfsAbstractionResult(model=model, registers=registers)
