"""Abstract-model construction and refinement bookkeeping (Steps 1 & 4).

RFN's abstract models are subcircuits of the original design, identified
by the set of *kept registers*: the model contains those registers, the
transitive fanins (up to register outputs) of their data inputs and of the
property signals, and exposes the outputs of all dropped registers as
pseudo primary inputs (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set

from repro.core.property import UnreachabilityProperty
from repro.netlist.circuit import Circuit
from repro.netlist.ops import coi_registers, extract_subcircuit


@dataclass
class Abstraction:
    """The current abstraction: original design + kept register set."""

    original: Circuit
    prop: UnreachabilityProperty
    kept_registers: Set[str] = field(default_factory=set)
    model: Circuit = field(init=False)

    def __post_init__(self) -> None:
        self.prop.validate_against(self.original)
        self._rebuild()

    def _rebuild(self) -> None:
        self.model = extract_subcircuit(
            self.original,
            self.kept_registers,
            self.prop.signals(),
            name=f"{self.original.name}.abs{len(self.kept_registers)}",
        )

    @classmethod
    def initial(
        cls, original: Circuit, prop: UnreachabilityProperty
    ) -> "Abstraction":
        """Step 1, first iteration: the subcircuit containing the transitive
        fanins of the signals mentioned in the property.  Since targets are
        register outputs (watchdogs), those registers seed the kept set."""
        kept = {
            sig
            for sig in prop.signals()
            if original.is_register_output(sig)
        }
        return cls(original=original, prop=prop, kept_registers=kept)

    def refine(self, new_registers: Iterable[str]) -> int:
        """Add registers (plus their transitive fanins, implicitly) to the
        abstract model; returns how many were actually new."""
        added = 0
        for reg in new_registers:
            if not self.original.is_register_output(reg):
                raise ValueError(f"{reg!r} is not a register output")
            if reg not in self.kept_registers:
                self.kept_registers.add(reg)
                added += 1
        if added:
            self._rebuild()
        return added

    def with_registers(self, registers: Iterable[str]) -> Circuit:
        """A candidate refined model (without mutating this abstraction)."""
        return extract_subcircuit(
            self.original,
            self.kept_registers | set(registers),
            self.prop.signals(),
            name=f"{self.original.name}.cand",
        )

    # ------------------------------------------------------------------

    def pseudo_input_registers(self) -> List[str]:
        """Model primary inputs that are register outputs of the original
        design (Figure 1: "primary inputs of N but register outputs of M")."""
        return [
            sig
            for sig in self.model.inputs
            if self.original.is_register_output(sig)
        ]

    def true_primary_inputs(self) -> List[str]:
        return [
            sig for sig in self.model.inputs if self.original.is_input(sig)
        ]

    def remaining_coi_registers(self) -> Set[str]:
        """COI registers not yet in the abstract model -- the refinement
        candidate universe."""
        return coi_registers(
            self.original, self.prop.signals()
        ) - self.kept_registers

    def stats(self) -> dict:
        return {
            "kept_registers": len(self.kept_registers),
            "model_gates": self.model.num_gates,
            "model_inputs": self.model.num_inputs,
            "pseudo_inputs": len(self.pseudo_input_registers()),
        }
