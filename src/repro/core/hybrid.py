"""The BDD-ATPG hybrid engine for abstract error traces (Step 2).

When the forward fixpoint on the abstract model N intersects the target
states, RFN must produce an error trace of N.  Plain BDD pre-image on N is
hopeless when N has thousands of (pseudo) primary inputs, so the hybrid
method works on the *min-cut design* MC instead (Section 2.2):

1. pick the fattest cube ``T`` in ``B & S_k``;
2. compute ``R = S_{k-1} & preimage_MC(T)``;
3. if ``R`` has a *no-cut* cube (registers / primary inputs of N only),
   split it into the cycle's input cube and state cube; the state cube is
   the next ``T``;
4. otherwise take *min-cut* cubes of ``R`` (they assign internal signals
   of N that are MC inputs) one at a time and ask combinational ATPG for a
   consistent no-cut assignment on N;
5. repeat until cycle 0.

Because a cube of an R-BDD is closed under completing its don't-cares, any
ATPG completion consistent with a min-cut cube of R projects back into R,
so the constructed cube sequence is always satisfiable on N.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.atpg.engine import AtpgBudget, AtpgOutcome, combinational_atpg
from repro.trace import Trace
from repro.mc.encode import SymbolicEncoding
from repro.mc.images import ImageComputer
from repro.mc.reach import ReachResult
from repro.mincut import MinCutResult, min_cut_design
from repro.netlist.circuit import Circuit
from repro.runtime.budget import Budget


class HybridEngineError(Exception):
    """Raised when no consistent no-cut cube can be constructed (would
    indicate a soundness bug or an exhausted cube budget)."""


@dataclass
class HybridStats:
    preimages: int = 0
    direct_no_cut: int = 0
    atpg_calls: int = 0
    atpg_conflicts: int = 0
    mincut_inputs: int = 0
    model_inputs: int = 0


@dataclass
class HybridTraceEngine:
    """Builds abstract error traces from a completed reachability run."""

    model: Circuit
    encoding: SymbolicEncoding
    images: ImageComputer
    atpg_budget: AtpgBudget = field(default_factory=AtpgBudget)
    max_cube_tries: int = 256
    #: optional runtime budget polled per pre-image step and cube try
    budget: Optional[Budget] = None
    #: route ATPG justification through the pooled incremental solver
    incremental: bool = True

    def __post_init__(self) -> None:
        self.mincut: MinCutResult = min_cut_design(self.model)
        self.mc_encoding = SymbolicEncoding(
            self.mincut.circuit, bdd=self.encoding.bdd
        )
        self.mc_images = ImageComputer(self.mc_encoding)
        self.stats = HybridStats(
            mincut_inputs=self.mincut.num_inputs,
            model_inputs=self.model.num_inputs,
        )
        self._state_vars = set(self.encoding.current_vars)
        self._model_inputs = set(self.model.inputs)

    # ------------------------------------------------------------------

    def build_trace(self, reach: ReachResult, target) -> Trace:
        """Construct an abstract error trace from the onion rings.

        ``reach`` must have hit the target at ring ``reach.hit_ring``;
        ``target`` is the BDD of the bad states B.
        """
        if reach.hit_ring is None:
            raise ValueError("reachability result did not hit the target")
        bdd = self.encoding.bdd
        k = reach.hit_ring
        fat = bdd.shortest_cube(reach.rings[k] & target)
        if fat is None:  # pragma: no cover - guarded by hit_ring
            raise HybridEngineError("target ring is empty")
        states: List[Dict[str, int]] = [dict(fat)]
        inputs: List[Dict[str, int]] = [{}]
        current = dict(fat)
        for ring_index in range(k - 1, -1, -1):
            state_cube, input_cube = self._step_back(
                reach.rings[ring_index], current
            )
            states.append(state_cube)
            inputs.append(input_cube)
            current = state_cube
        states.reverse()
        inputs.reverse()
        # After the reversal inputs[i] is the vector recorded while
        # stepping from ring i to ring i+1, i.e. the cycle-i inputs, and
        # the final cycle carries the empty input cube.
        return Trace(states=states, inputs=inputs, circuit_name=self.model.name)

    # ------------------------------------------------------------------

    def _step_back(
        self, ring, target_cube: Dict[str, int]
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """One pre-image step on the min-cut design; returns the previous
        cycle's (state cube, input cube)."""
        bdd = self.encoding.bdd
        if self.budget is not None:
            self.budget.checkpoint(engine="hybrid")
        self.stats.preimages += 1
        t_fn = bdd.cube(target_cube)
        r = self.mc_images.pre_image_keep_inputs(t_fn) & ring
        if r.is_false:
            raise HybridEngineError(
                "empty pre-image intersection; onion rings inconsistent"
            )
        fat = bdd.shortest_cube(r)
        if self.mincut.is_no_cut_cube(fat):
            self.stats.direct_no_cut += 1
            return self._split_no_cut(fat)
        # Try min-cut cubes one at a time as combinational ATPG targets.
        for cube in itertools.islice(
            bdd.iter_cubes(r), self.max_cube_tries
        ):
            if self.budget is not None:
                self.budget.checkpoint(engine="hybrid")
            if self.mincut.is_no_cut_cube(cube):
                self.stats.direct_no_cut += 1
                return self._split_no_cut(cube)
            resolved = self._justify_min_cut_cube(cube, r)
            if resolved is not None:
                return resolved
        raise HybridEngineError(
            f"no consistent no-cut cube within {self.max_cube_tries} tries"
        )

    def _split_no_cut(
        self, cube: Dict[str, int]
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        state_cube = {
            k: v for k, v in cube.items() if k in self._state_vars
        }
        input_cube = {
            k: v for k, v in cube.items() if k in self._model_inputs
        }
        return state_cube, input_cube

    def _justify_min_cut_cube(
        self, cube: Dict[str, int], r
    ) -> Optional[Tuple[Dict[str, int], Dict[str, int]]]:
        """Combinational ATPG on N for a no-cut assignment consistent with
        a min-cut cube (Section 2.2)."""
        self.stats.atpg_calls += 1
        result = combinational_atpg(
            self.model, cube, budget=self.atpg_budget,
            incremental=self.incremental,
        )
        self.stats.atpg_conflicts += result.conflicts
        if result.outcome is not AtpgOutcome.TRACE_FOUND:
            return None
        assignment = result.assignment
        support = r.support()
        state_cube = {
            name: assignment[name]
            for name in self._state_vars
            if name in support or name in cube
        }
        input_cube = {
            name: assignment[name] for name in self._model_inputs
        }
        return state_cube, input_cube
