"""Independent certification of verification results.

RFN's VERIFIED answer rests on the BDD engine: the forward fixpoint of the
abstract model avoided the bad states.  This module re-checks that answer
with the *other* formal engine (SAT/ATPG), closing the loop between the
paper's two formal technologies:

- the abstract model's reached set is an **inductive invariant**: it
  contains the initial states, is closed under the transition relation,
  and excludes the bad states;
- each obligation is discharged as an unsatisfiability query on the
  abstract model's CNF encoding -- one engine's proof becomes the other
  engine's theorem.

A certified FALSIFIED answer is simpler: the concrete error trace is
replayed from its initial state and must visit a bad state.  Replay runs
on the bit-parallel kernel simulator by default (``simulator="kernel"``);
the interpreted levelized simulator remains available as an independent
second replay path (``simulator="interpreted"``), and the two are pinned
to identical certificates by the test suite.

This is both a user-facing audit feature and a ruthless internal
consistency check (any soundness bug in the BDD engine, the encoder or
the image computation shows up as a failed certificate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.atpg.encode import Unroller
from repro.bdd import Function
from repro.core.property import UnreachabilityProperty
from repro.kernel.bitsim import BitParallelSimulator, pack_lanes, pack_lanes_masked
from repro.kernel.scache import solver_session
from repro.trace import Trace
from repro.mc.encode import SymbolicEncoding
from repro.netlist.circuit import Circuit
from repro.sat.solver import SatStatus, Solver
from repro.sim.simulator import Simulator


class CertificateStatus(enum.Enum):
    CERTIFIED = "certified"
    FAILED = "failed"
    INCOMPLETE = "incomplete"  # a SAT query hit its budget


@dataclass
class Certificate:
    status: CertificateStatus
    obligations: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is CertificateStatus.CERTIFIED


def _invariant_clauses(
    invariant: Function,
    encoding: SymbolicEncoding,
    unroller: Unroller,
    cycle: int,
    aux_prefix: str,
):
    """CNF clauses asserting the BDD ``invariant`` over the state variables
    of one unrolled frame; returns the literal representing it.

    Standard Tseitin translation of a BDD: one auxiliary CNF variable per
    BDD node, three clauses per node (if-then-else semantics).
    """
    bdd = encoding.bdd
    cnf = unroller.cnf
    node = invariant.node
    if node == bdd.FALSE:
        fresh = cnf.new_var(f"{aux_prefix}$false")
        cnf.add_unit(-fresh)
        return fresh
    if node == bdd.TRUE:
        fresh = cnf.new_var(f"{aux_prefix}$true")
        cnf.add_unit(fresh)
        return fresh

    node_lit: Dict[int, int] = {}

    def lit_for(n: int) -> int:
        if n == bdd.TRUE or n == bdd.FALSE:
            raise AssertionError("terminals handled inline")
        return node_lit[n]

    order = []
    seen = set()
    stack = [node]
    while stack:
        n = stack.pop()
        if n <= 1 or n in seen:
            continue
        seen.add(n)
        order.append(n)
        stack.append(bdd._resolve(bdd._low[n]))
        stack.append(bdd._resolve(bdd._high[n]))
    for n in order:
        node_lit[n] = cnf.new_var(f"{aux_prefix}$n{n}")
    for n in order:
        var_name = bdd._top_var_name(n)
        sel = unroller.lit(var_name, cycle)
        low = bdd._resolve(bdd._low[n])
        high = bdd._resolve(bdd._high[n])
        out = node_lit[n]

        def branch_lit(child: int):
            if child == bdd.TRUE:
                return None, True
            if child == bdd.FALSE:
                return None, False
            return node_lit[child], None

        low_lit, low_const = branch_lit(low)
        high_lit, high_const = branch_lit(high)
        # out <-> (sel ? high : low)
        if high_const is None:
            cnf.add_clause([-sel, -out, high_lit])
            cnf.add_clause([-sel, out, -high_lit])
        elif high_const:
            cnf.add_clause([-sel, out])
        else:
            cnf.add_clause([-sel, -out])
        if low_const is None:
            cnf.add_clause([sel, -out, low_lit])
            cnf.add_clause([sel, out, -low_lit])
        elif low_const:
            cnf.add_clause([sel, out])
        else:
            cnf.add_clause([sel, -out])
    return node_lit[node]


def certify_invariant(
    model: Circuit,
    prop: UnreachabilityProperty,
    invariant: Function,
    encoding: SymbolicEncoding,
    max_conflicts: Optional[int] = 1_000_000,
    incremental: bool = True,
) -> Certificate:
    """SAT-check the three inductive-invariant obligations on ``model``.

    1. *Initiation*: no initial state falsifies the invariant.
    2. *Consecution*: no transition leaves the invariant.
    3. *Safety*: no invariant state is a bad state.

    With ``incremental`` (default), obligations run on the pooled solver
    sessions for ``model`` -- sharing learned clauses with the BMC and
    ATPG queries CEGAR already issued on the same abstraction -- and the
    per-obligation invariant encodings are scoped inside
    ``push()``/``pop()`` activation groups so they vanish after the
    query instead of polluting the shared clause database.
    """
    obligations: Dict[str, str] = {}
    status = CertificateStatus.CERTIFIED

    def record(name: str, result) -> None:
        nonlocal status
        if result.status is SatStatus.UNSAT:
            obligations[name] = "unsat (holds)"
        elif result.status is SatStatus.SAT:
            obligations[name] = "SAT: counterexample to the obligation"
            status = CertificateStatus.FAILED
        else:
            obligations[name] = "budget exceeded"
            if status is CertificateStatus.CERTIFIED:
                status = CertificateStatus.INCOMPLETE

    if incremental:
        # One initial-state session (shared with BMC's bounded loop) and
        # one free-start two-frame session (shared with combinational
        # ATPG; frame 1 is simply unconstrained for 1-frame queries).
        init_session = solver_session(model, 1, use_initial_state=True)
        free_session = solver_session(model, 2, use_initial_state=False)

        def run_scoped(name: str, session, build_lits) -> None:
            session.solver.push()
            try:
                lits = build_lits(session)
                result = session.solve(lits, max_conflicts=max_conflicts)
            finally:
                session.solver.pop()
            record(name, result)

        run_scoped(
            "initiation",
            init_session,
            lambda s: [
                -_invariant_clauses(
                    invariant, encoding, s.unroller, 0,
                    s.fresh_prefix("inv0"),
                )
            ],
        )

        def consecution_lits(s):
            inv0 = _invariant_clauses(
                invariant, encoding, s.unroller, 0, s.fresh_prefix("inv0")
            )
            inv1 = _invariant_clauses(
                invariant, encoding, s.unroller, 1, s.fresh_prefix("inv1")
            )
            return [inv0, -inv1]

        run_scoped("consecution", free_session, consecution_lits)

        def safety_lits(s):
            inv0 = _invariant_clauses(
                invariant, encoding, s.unroller, 0, s.fresh_prefix("inv0")
            )
            bad = [
                s.unroller.lit(name, 0, value)
                for name, value in prop.target.items()
            ]
            return [inv0] + bad

        run_scoped("safety", free_session, safety_lits)
        return Certificate(status=status, obligations=obligations)

    def run_query(name: str, build) -> None:
        solver, query_lits = build()
        result = solver.solve(
            assumptions=query_lits, max_conflicts=max_conflicts
        )
        record(name, result)

    # 1. Initiation: init & ~Inv(0) unsat.
    def build_initiation():
        unroller = Unroller(model, 1, use_initial_state=True)
        inv0 = _invariant_clauses(invariant, encoding, unroller, 0, "inv0")
        return Solver(unroller.cnf), [-inv0]

    run_query("initiation", build_initiation)

    # 2. Consecution: Inv(0) & T & ~Inv(1) unsat.
    def build_consecution():
        unroller = Unroller(model, 2, use_initial_state=False)
        inv0 = _invariant_clauses(invariant, encoding, unroller, 0, "inv0")
        inv1 = _invariant_clauses(invariant, encoding, unroller, 1, "inv1")
        return Solver(unroller.cnf), [inv0, -inv1]

    run_query("consecution", build_consecution)

    # 3. Safety: Inv(0) & bad(0) unsat.
    def build_safety():
        unroller = Unroller(model, 1, use_initial_state=False)
        inv0 = _invariant_clauses(invariant, encoding, unroller, 0, "inv0")
        bad = [
            unroller.lit(name, 0, value)
            for name, value in prop.target.items()
        ]
        return Solver(unroller.cnf), [inv0] + bad

    run_query("safety", build_safety)
    return Certificate(status=status, obligations=obligations)


def _replay_interpreted(circuit: Circuit, trace: Trace):
    """Per-cycle full valuations through the interpreted simulator."""
    sim = Simulator(circuit)
    state = dict(trace.states[0])
    for cycle in range(trace.length):
        values, state = sim.step(state, trace.inputs[cycle])
        yield values


def _replay_kernel(circuit: Circuit, trace: Trace):
    """Per-cycle full valuations through the bit-parallel kernel, one
    lane, with the trace-replay register-override convention preserved
    via the lane assignment masks."""
    sim = BitParallelSimulator(circuit)
    state = pack_lanes([dict(trace.states[0])])
    for cycle in range(trace.length):
        inputs, masks = pack_lanes_masked([trace.inputs[cycle]])
        frame = sim.evaluate(state, inputs, 1, input_masks=masks)
        state = sim.next_state(frame)
        yield frame.lane_valuation(0)


def certify_error_trace(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    trace: Trace,
    simulator: str = "kernel",
) -> Certificate:
    """Replay a concrete error trace on a simulator; it must visit a
    bad state and start in a legal initial state.

    ``simulator`` picks the replay engine: ``"kernel"`` (default, the
    bit-parallel compiled path) or ``"interpreted"`` (the levelized
    reference simulator).  Both are certified equivalent, so the choice
    only matters when auditing one of them against the other.
    """
    if simulator == "kernel":
        replay = _replay_kernel(circuit, trace)
    elif simulator == "interpreted":
        replay = _replay_interpreted(circuit, trace)
    else:
        raise ValueError(f"unknown replay simulator {simulator!r}")
    obligations: Dict[str, str] = {}
    state = dict(trace.states[0])
    legal_init = all(
        reg.init is None or state.get(name, reg.init) == reg.init
        for name, reg in circuit.registers.items()
    )
    obligations["initial-state"] = (
        "matches declared init values" if legal_init
        else "FAILS: trace starts outside the initial states"
    )
    visited_bad = False
    for cycle, values in enumerate(replay):
        if prop.holds_in_state(values):
            visited_bad = True
            obligations["bad-state"] = f"reached at cycle {cycle}"
            break
    if not visited_bad:
        obligations["bad-state"] = "FAILS: never reached"
    ok = legal_init and visited_bad
    return Certificate(
        status=(
            CertificateStatus.CERTIFIED if ok else CertificateStatus.FAILED
        ),
        obligations=obligations,
    )
