"""VCD (value change dump) export for traces.

Error traces are only useful if a designer can look at them; this writes
a :class:`~repro.trace.Trace` as an IEEE-1364-style VCD file that any
waveform viewer (GTKWave etc.) opens.  Partial cubes are supported: an
unassigned signal is emitted as ``x``.

Vector-looking signal names (``cnt[3]``) are grouped into VCD vector
variables so counters render as buses.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.trace import Trace

_VECTOR_RE = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact printable VCD identifier codes."""
    digits = []
    while True:
        digits.append(_ID_CHARS[index % len(_ID_CHARS)])
        index //= len(_ID_CHARS)
        if index == 0:
            break
    return "".join(digits)


def _group_signals(names: Iterable[str]) -> List[Tuple[str, List[str]]]:
    """Group ``base[i]`` names into vectors; scalars stay alone.

    Returns (display name, [bit signal names LSB-first]) pairs.
    """
    vectors: Dict[str, Dict[int, str]] = {}
    scalars: List[str] = []
    for name in names:
        match = _VECTOR_RE.match(name)
        if match:
            vectors.setdefault(match.group("base"), {})[
                int(match.group("index"))
            ] = name
        else:
            scalars.append(name)
    grouped: List[Tuple[str, List[str]]] = []
    for base in sorted(vectors):
        bits = vectors[base]
        indexes = sorted(bits)
        if indexes == list(range(len(indexes))) and len(indexes) > 1:
            grouped.append((base, [bits[i] for i in indexes]))
        else:  # sparse vector: keep the bits as scalars
            scalars.extend(bits[i] for i in indexes)
    for name in sorted(scalars):
        grouped.append((name, [name]))
    return grouped


def write_vcd(
    trace: Trace,
    out: TextIO,
    signals: Optional[List[str]] = None,
    timescale: str = "1ns",
    module: str = "trace",
) -> None:
    """Write a trace to an open text file as VCD."""
    if signals is None:
        seen = set()
        signals = []
        for cycle in range(trace.length):
            for name in trace.cube_at(cycle):
                if name not in seen:
                    seen.add(name)
                    signals.append(name)
        signals.sort()
    groups = _group_signals(signals)

    out.write(f"$timescale {timescale} $end\n")
    out.write(f"$scope module {module} $end\n")
    codes: List[Tuple[str, List[str], str]] = []
    for index, (display, bits) in enumerate(groups):
        code = _identifier(index)
        width = len(bits)
        if width == 1:
            out.write(f"$var wire 1 {code} {display} $end\n")
        else:
            out.write(
                f"$var wire {width} {code} {display} "
                f"[{width - 1}:0] $end\n"
            )
        codes.append((display, bits, code))
    out.write("$upscope $end\n$enddefinitions $end\n")

    previous: Dict[str, str] = {}
    for cycle in range(trace.length):
        cube = trace.cube_at(cycle)
        changes: List[str] = []
        for _display, bits, code in codes:
            if len(bits) == 1:
                value = cube.get(bits[0])
                rendered = "x" if value is None else str(value)
                line = f"{rendered}{code}"
            else:
                rendered = "".join(
                    "x" if cube.get(bit) is None else str(cube.get(bit))
                    for bit in reversed(bits)
                )
                line = f"b{rendered} {code}"
            if previous.get(code) != line:
                previous[code] = line
                changes.append(line)
        if changes or cycle == 0:
            out.write(f"#{cycle}\n")
            for line in changes:
                out.write(line + "\n")
    out.write(f"#{trace.length}\n")


def trace_to_vcd(trace: Trace, path: str, **kwargs) -> str:
    """Write a trace to ``path``; returns the path."""
    with open(path, "w") as handle:
        write_vcd(trace, handle, **kwargs)
    return path
