"""BDD-based symbolic model checking.

The formal engine of RFN's Step 2 and the Table-1 baseline:

- :mod:`repro.mc.encode` -- circuit-to-BDD encoding: grouped current/next
  state variables, a DFS static variable order, next-state functions,
- :mod:`repro.mc.images` -- clustered transition relations with early
  quantification; post-image and pre-image operators,
- :mod:`repro.mc.reach` -- forward fixpoint computation with onion rings
  (the per-cycle reachable sets S1..Sk the hybrid engine consumes) and
  on-the-fly target checking,
- :mod:`repro.mc.checker` -- a plain symbolic model checker with
  cone-of-influence reduction, the baseline RFN is compared against in
  Table 1.
"""

from repro.mc.encode import SymbolicEncoding
from repro.mc.images import ImageComputer
from repro.mc.reach import ReachOutcome, ReachResult, forward_reach
from repro.mc.checker import CheckOutcome, CheckResult, model_check_coi

__all__ = [
    "CheckOutcome",
    "CheckResult",
    "ImageComputer",
    "ReachOutcome",
    "ReachResult",
    "SymbolicEncoding",
    "forward_reach",
    "model_check_coi",
]
