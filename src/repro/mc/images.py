"""Post-image and pre-image computation with clustered transition
relations and early quantification.

The transition relation is kept as a conjunction of per-register
partitions ``T_i = (next_i <-> f_i)``, greedily clustered up to a BDD node
limit (the IWLS-95 recipe, simplified).  During a relational product the
quantified variables are eliminated at the last cluster whose support
mentions them -- the "early quantification" that lets post-image cope with
abstract models that have thousands of primary inputs (Section 2.2: "most
of the primary inputs will be quantified out early").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bdd import Function
from repro.mc.encode import SymbolicEncoding, next_var_name


class ImageComputer:
    """Reusable post/pre-image operators for one encoding."""

    def __init__(
        self,
        encoding: SymbolicEncoding,
        cluster_node_limit: int = 2000,
    ) -> None:
        self.encoding = encoding
        self.bdd = encoding.bdd
        self.cluster_node_limit = cluster_node_limit
        self.clusters: List[Function] = self._build_clusters()
        self._post_schedule = self._schedule(
            set(encoding.current_vars) | set(encoding.input_vars)
        )
        self._pre_schedule = self._schedule(
            {next_var_name(r) for r in encoding.current_vars}
            | set(encoding.input_vars)
        )
        self._pre_keep_inputs_schedule = self._schedule(
            {next_var_name(r) for r in encoding.current_vars}
        )

    def _build_clusters(self) -> List[Function]:
        bdd = self.bdd
        clusters: List[Function] = []
        current: Optional[Function] = None
        for reg in self.encoding.current_vars:
            part = bdd.var(next_var_name(reg)).equiv(
                self.encoding.next_state_function(reg)
            )
            if current is None:
                current = part
            else:
                merged = current & part
                if merged.size() > self.cluster_node_limit:
                    clusters.append(current)
                    current = part
                else:
                    current = merged
        if current is not None:
            clusters.append(current)
        if not clusters:
            clusters.append(bdd.true)
        return clusters

    def _schedule(self, quantified: Set[str]) -> List[List[str]]:
        """For each cluster, the quantified variables whose last occurrence
        (over cluster supports) is that cluster.  Variables appearing in no
        cluster are scheduled at index 0 (they can only come from the
        argument set)."""
        last_seen: Dict[str, int] = {}
        for index, cluster in enumerate(self.clusters):
            for name in cluster.support():
                if name in quantified:
                    last_seen[name] = index
        schedule: List[List[str]] = [[] for _ in self.clusters]
        for name in quantified:
            schedule[last_seen.get(name, 0)].append(name)
        return schedule

    # ------------------------------------------------------------------

    def post_image(self, states: Function) -> Function:
        """States reachable in one cycle from ``states`` (over current
        vars); result is over current vars again."""
        bdd = self.bdd
        acc = states
        for cluster, qvars in zip(self.clusters, self._post_schedule):
            acc = bdd.and_exists(acc, cluster, qvars)
        return self.encoding.rename_next_to_current(acc)

    def pre_image(self, states: Function) -> Function:
        """States that can reach ``states`` in one cycle."""
        bdd = self.bdd
        acc = self.encoding.rename_current_to_next(states)
        for cluster, qvars in zip(self.clusters, self._pre_schedule):
            acc = bdd.and_exists(acc, cluster, qvars)
        return acc

    def pre_image_keep_inputs(self, states: Function) -> Function:
        """Pre-image quantifying only the next-state variables: the result
        relates predecessor states *and the input values* that drive the
        transition.  The hybrid engine needs this richer relation -- its R
        cubes mention min-cut inputs (Section 2.2, Figure 1)."""
        bdd = self.bdd
        acc = self.encoding.rename_current_to_next(states)
        for cluster, qvars in zip(self.clusters, self._pre_keep_inputs_schedule):
            acc = bdd.and_exists(acc, cluster, qvars)
        return acc

    def constrained_pre_image(
        self, states: Function, constraint: Function
    ) -> Function:
        """``pre_image(states) & constraint`` computed with the constraint
        conjoined up front (cheaper when the constraint is small)."""
        return self.pre_image(states) & constraint
