"""Bounded model checking and k-induction on the SAT/ATPG engine.

A complementary pure-SAT verification path ("ATPG can also be used for
functional verification", reference [3] of the paper): iteratively deepen
a bounded search for the bad states, and at each depth also attempt the
k-induction step -- if no ``k``-step path of non-bad states can end in a
bad state from an arbitrary start, the property holds.

With ``unique_states`` the induction step adds simple-path constraints
(pairwise state disequality), which makes k-induction complete on finite
systems at the cost of quadratically many constraints.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.atpg.encode import Unroller
from repro.core.property import UnreachabilityProperty
from repro.netlist.circuit import Circuit
from repro.netlist.ops import coi_registers, extract_subcircuit
from repro.sat.solver import SatStatus, Solver
from repro.trace import Trace


class BmcOutcome(enum.Enum):
    TRUE = "true"  # proved by k-induction
    FALSE = "false"  # counterexample found
    UNKNOWN = "unknown"  # depth or budget exhausted


@dataclass
class BmcResult:
    outcome: BmcOutcome
    depth: int
    trace: Optional[Trace] = None
    induction_depth: Optional[int] = None
    seconds: float = 0.0


def _bad_literals(unroller: Unroller, prop, cycle: int) -> List[int]:
    return [
        unroller.lit(name, cycle, value)
        for name, value in prop.target.items()
    ]


def _bounded_step(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    depth: int,
    max_conflicts: Optional[int],
    deadline: Optional[float] = None,
    budget=None,
) -> Optional[Trace]:
    """SAT query: init & T^depth & bad@depth.  Returns a trace or None."""
    unroller = Unroller(circuit, depth + 1, use_initial_state=True)
    for lit in _bad_literals(unroller, prop, depth):
        unroller.cnf.add_unit(lit)
    result = Solver(unroller.cnf).solve(
        max_conflicts=max_conflicts, deadline=deadline, budget=budget
    )
    if result.status is not SatStatus.SAT:
        return None
    trace = Trace(circuit_name=circuit.name)
    for cycle in range(depth + 1):
        trace.append_cycle(
            unroller.decode_state(result.model, cycle),
            unroller.decode_inputs(result.model, cycle),
        )
    return trace


def _induction_step(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    depth: int,
    max_conflicts: Optional[int],
    unique_states: bool,
    deadline: Optional[float] = None,
    budget=None,
) -> Optional[bool]:
    """SAT query: ~bad@0..depth-1 & T^depth & bad@depth with a free start.

    Returns True when UNSAT (induction holds), False when SAT, None on
    budget exhaustion.
    """
    unroller = Unroller(circuit, depth + 1, use_initial_state=False)
    cnf = unroller.cnf
    for cycle in range(depth):
        cnf.add_clause(
            [-lit for lit in _bad_literals(unroller, prop, cycle)]
        )
    for lit in _bad_literals(unroller, prop, depth):
        cnf.add_unit(lit)
    if unique_states and depth >= 1:
        registers = list(circuit.registers)
        for i in range(depth + 1):
            for j in range(i + 1, depth + 1):
                difference = []
                for reg in registers:
                    neq = cnf.new_var()
                    cnf.add_xor2(
                        neq, abs(unroller.lit(reg, i)),
                        abs(unroller.lit(reg, j)),
                    )
                    difference.append(neq)
                cnf.add_clause(difference)
    result = Solver(cnf).solve(
        max_conflicts=max_conflicts, deadline=deadline, budget=budget
    )
    if result.status is SatStatus.UNSAT:
        return True
    if result.status is SatStatus.SAT:
        return False
    return None


def bmc(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    max_depth: int = 32,
    max_conflicts: Optional[int] = 200_000,
    induction: bool = True,
    unique_states: bool = False,
    use_coi: bool = True,
    max_seconds: Optional[float] = None,
    budget=None,
) -> BmcResult:
    """Iteratively-deepened bounded model checking with k-induction.

    At each depth ``k``: look for a length-``k`` counterexample; if none
    and ``induction`` is on, try to close the proof with the ``k``-step
    induction obligation.

    ``max_seconds`` bounds the whole run (each SAT call inherits the
    remaining wall clock; an exceeded deadline yields UNKNOWN).
    ``budget`` optionally attaches a :class:`repro.runtime.Budget`,
    whose exhaustion raises a structured ``EngineAbort`` instead.
    """
    start = time.monotonic()
    deadline = (
        None if max_seconds is None else start + max_seconds
    )
    prop.validate_against(circuit)
    model = circuit
    if use_coi:
        coi = coi_registers(circuit, prop.signals())
        model = extract_subcircuit(
            circuit, coi, prop.signals(), name=f"{circuit.name}.coi"
        )
    for depth in range(max_depth + 1):
        if deadline is not None and time.monotonic() >= deadline:
            break
        if budget is not None:
            budget.checkpoint(engine="bmc")
        trace = _bounded_step(
            model, prop, depth, max_conflicts, deadline, budget
        )
        if trace is not None:
            return BmcResult(
                BmcOutcome.FALSE,
                depth,
                trace=trace,
                seconds=time.monotonic() - start,
            )
        if induction and depth >= 1:
            holds = _induction_step(
                model, prop, depth, max_conflicts, unique_states,
                deadline, budget,
            )
            if holds:
                return BmcResult(
                    BmcOutcome.TRUE,
                    depth,
                    induction_depth=depth,
                    seconds=time.monotonic() - start,
                )
    return BmcResult(
        BmcOutcome.UNKNOWN, max_depth, seconds=time.monotonic() - start
    )
