"""Bounded model checking and k-induction on the SAT/ATPG engine.

A complementary pure-SAT verification path ("ATPG can also be used for
functional verification", reference [3] of the paper): iteratively deepen
a bounded search for the bad states, and at each depth also attempt the
k-induction step -- if no ``k``-step path of non-bad states can end in a
bad state from an arbitrary start, the property holds.

With ``unique_states`` the induction step adds simple-path constraints
(pairwise state disequality), which makes k-induction complete on finite
systems at the cost of quadratically many constraints.

Incremental formulation (default).  Instead of building a fresh CNF and
solver at every depth, both loops run on persistent
:class:`~repro.atpg.encode.SolverSession` objects pooled by
:func:`repro.kernel.scache.solver_session`:

- the *bounded* loop keeps one unrolling that only ever grows, asserts
  ``bad@k`` through assumptions, and inherits every learned clause from
  shallower depths -- and, because the pool key is the plain
  initial-state signature, from sequential ATPG runs and earlier CEGAR
  iterations over the same abstraction;
- the *induction* loop keeps a separate free-start session (tagged with
  the property, since its ``~bad`` clauses are permanent) where each new
  depth appends only the newly needed ``~bad@k-1`` clause and, under
  ``unique_states``, only the disequality pairs involving the new frame
  -- O(depth) new constraints per step instead of re-encoding the
  O(depth^2) pair set.

Because the induction session's ``~bad`` and uniqueness constraints are
permanent and monotone in depth, a pooled session revived by a later,
shallower run would answer those depths spuriously (``bad@k`` clashes
with an already-asserted ``~bad@k``).  The loop therefore skips the
induction attempt below the session's high-water mark -- sound, since a
skipped induction attempt can only delay TRUE, never flip a verdict --
and resumes once the depth catches up.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.atpg.encode import SolverSession, Unroller
from repro.core.property import UnreachabilityProperty
from repro.kernel.scache import solver_session
from repro.netlist.circuit import Circuit
from repro.netlist.ops import coi_registers, extract_subcircuit
from repro.obs import tracer as obs
from repro.sat.solver import SatStatus, Solver
from repro.trace import Trace


class BmcOutcome(enum.Enum):
    TRUE = "true"  # proved by k-induction
    FALSE = "false"  # counterexample found
    UNKNOWN = "unknown"  # depth or budget exhausted


@dataclass
class BmcResult:
    outcome: BmcOutcome
    depth: int
    trace: Optional[Trace] = None
    induction_depth: Optional[int] = None
    seconds: float = 0.0


def _bad_literals(unroller: Unroller, prop, cycle: int) -> List[int]:
    return [
        unroller.lit(name, cycle, value)
        for name, value in prop.target.items()
    ]


def _minimize_model(
    solve_fn,
    unroller: Unroller,
    circuit: Circuit,
    depth: int,
    base_assumptions: List[int],
    fallback_model: Mapping[int, bool],
) -> Mapping[int, bool]:
    """Lexicographically minimize a satisfying model.

    Greedily pins every *free* variable of the unrolling -- frame-0
    registers without a declared init, then the inputs of each cycle, in
    declaration order -- preferring 0.  Since the circuit is
    deterministic, this pins the entire model, so incremental and
    monolithic solving (whose raw CDCL models differ) decode to the
    *same* counterexample trace.  ``solve_fn(assumptions)`` must return a
    :class:`SatResult`; a non-SAT/UNSAT status (budget or deadline ran
    out mid-minimization) falls back to the last model seen.
    """
    queries: List[int] = []
    for name, reg in circuit.registers.items():
        if reg.init is None:
            queries.append(unroller.lit(name, 0))
    for cycle in range(depth + 1):
        for name in circuit.inputs:
            queries.append(unroller.lit(name, cycle))
    fixed = list(base_assumptions)
    model = fallback_model
    for lit in queries:
        result = solve_fn(fixed + [-lit])
        if result.status is SatStatus.SAT:
            fixed.append(-lit)
            model = result.model
        elif result.status is SatStatus.UNSAT:
            fixed.append(lit)
        else:
            return model
    return model


def _decode_trace(
    unroller: Unroller,
    circuit: Circuit,
    model: Mapping[int, bool],
    depth: int,
) -> Trace:
    trace = Trace(circuit_name=circuit.name)
    for cycle in range(depth + 1):
        trace.append_cycle(
            unroller.decode_state(model, cycle),
            unroller.decode_inputs(model, cycle),
        )
    return trace


# ----------------------------------------------------------------------
# Monolithic (per-depth re-encode) steps -- the --no-incremental path
# ----------------------------------------------------------------------


def _bounded_step(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    depth: int,
    max_conflicts: Optional[int],
    deadline: Optional[float] = None,
    budget=None,
    canonical_trace: bool = False,
) -> Optional[Trace]:
    """SAT query: init & T^depth & bad@depth.  Returns a trace or None."""
    unroller = Unroller(circuit, depth + 1, use_initial_state=True)
    for lit in _bad_literals(unroller, prop, depth):
        unroller.cnf.add_unit(lit)
    solver = Solver(unroller.cnf)

    def solve_fn(assumptions):
        return solver.solve(
            assumptions=assumptions,
            max_conflicts=max_conflicts,
            deadline=deadline,
            budget=budget,
        )

    result = solve_fn([])
    if result.status is not SatStatus.SAT:
        return None
    model = result.model
    if canonical_trace:
        model = _minimize_model(
            solve_fn, unroller, circuit, depth, [], model
        )
    return _decode_trace(unroller, circuit, model, depth)


def _induction_step(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    depth: int,
    max_conflicts: Optional[int],
    unique_states: bool,
    deadline: Optional[float] = None,
    budget=None,
) -> Optional[bool]:
    """SAT query: ~bad@0..depth-1 & T^depth & bad@depth with a free start.

    Returns True when UNSAT (induction holds), False when SAT, None on
    budget exhaustion.
    """
    unroller = Unroller(circuit, depth + 1, use_initial_state=False)
    cnf = unroller.cnf
    for cycle in range(depth):
        cnf.add_clause(
            [-lit for lit in _bad_literals(unroller, prop, cycle)]
        )
    for lit in _bad_literals(unroller, prop, depth):
        cnf.add_unit(lit)
    if unique_states and depth >= 1:
        registers = list(circuit.registers)
        for i in range(depth + 1):
            for j in range(i + 1, depth + 1):
                _add_disequality(cnf, unroller, registers, i, j)
    result = Solver(cnf).solve(
        max_conflicts=max_conflicts, deadline=deadline, budget=budget
    )
    if result.status is SatStatus.UNSAT:
        return True
    if result.status is SatStatus.SAT:
        return False
    return None


def _add_disequality(
    cnf, unroller: Unroller, registers: List[str], i: int, j: int
) -> None:
    """state@i != state@j (at least one register bit differs)."""
    difference = []
    for reg in registers:
        neq = cnf.new_var()
        cnf.add_xor2(
            neq, abs(unroller.lit(reg, i)), abs(unroller.lit(reg, j))
        )
        difference.append(neq)
    cnf.add_clause(difference)


# ----------------------------------------------------------------------
# Incremental steps -- one persistent session per loop
# ----------------------------------------------------------------------


def _bounded_step_incremental(
    session: SolverSession,
    prop: UnreachabilityProperty,
    depth: int,
    max_conflicts: Optional[int],
    deadline: Optional[float] = None,
    budget=None,
    canonical_trace: bool = False,
) -> Optional[Trace]:
    """``bad@depth`` asserted through assumptions on the shared session;
    the unrolling and every learned clause persist to the next depth."""
    session.ensure_depth(depth + 1)
    unroller = session.unroller
    assumptions = _bad_literals(unroller, prop, depth)

    def solve_fn(extra):
        return session.solve(
            extra,
            max_conflicts=max_conflicts,
            deadline=deadline,
            budget=budget,
        )

    result = solve_fn(assumptions)
    if result.status is not SatStatus.SAT:
        return None
    model = result.model
    if canonical_trace:
        model = _minimize_model(
            solve_fn, unroller, session.circuit, depth, assumptions, model
        )
    return _decode_trace(unroller, session.circuit, model, depth)


def _induction_step_incremental(
    session: SolverSession,
    prop: UnreachabilityProperty,
    depth: int,
    max_conflicts: Optional[int],
    unique_states: bool,
    deadline: Optional[float] = None,
    budget=None,
) -> Optional[bool]:
    """The induction obligation on the persistent free-start session.

    ``~bad`` clauses and uniqueness pairs are permanent, appended
    monotonically: frames ``0..meta["nobad"]-1`` already carry the
    ``~bad`` clause, frames up to ``meta["uniq"]`` already carry their
    full disequality pair set, so each depth adds O(depth) constraints
    (only the pairs involving new frames) instead of re-encoding the
    whole O(depth^2) set.  Depths below the high-water mark are skipped
    by the caller (:func:`bmc`) -- a pooled session revived at a
    shallower depth would otherwise contradict its own permanent
    clauses.
    """
    session.ensure_depth(depth + 1)
    unroller = session.unroller
    cnf = session.cnf
    nobad = session.meta.get("nobad", 0)
    for cycle in range(nobad, depth):
        cnf.add_clause(
            [-lit for lit in _bad_literals(unroller, prop, cycle)]
        )
    session.meta["nobad"] = max(nobad, depth)
    if unique_states and depth >= 1:
        registers = list(session.circuit.registers)
        uniq = session.meta.get("uniq", 0)
        for frame in range(uniq + 1, depth + 1):
            for i in range(frame):
                _add_disequality(cnf, unroller, registers, i, frame)
        session.meta["uniq"] = max(uniq, depth)
    result = session.solve(
        _bad_literals(unroller, prop, depth),
        max_conflicts=max_conflicts,
        deadline=deadline,
        budget=budget,
    )
    if result.status is SatStatus.UNSAT:
        return True
    if result.status is SatStatus.SAT:
        return False
    return None


def _induction_tag(prop: UnreachabilityProperty, unique_states: bool):
    return (
        "bmc-ind",
        tuple(sorted(prop.target.items())),
        bool(unique_states),
    )


def bmc(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    max_depth: int = 32,
    max_conflicts: Optional[int] = 200_000,
    induction: bool = True,
    unique_states: bool = False,
    use_coi: bool = True,
    max_seconds: Optional[float] = None,
    budget=None,
    incremental: bool = True,
    canonical_trace: bool = False,
) -> BmcResult:
    """Iteratively-deepened bounded model checking with k-induction.

    At each depth ``k``: look for a length-``k`` counterexample; if none
    and ``induction`` is on, try to close the proof with the ``k``-step
    induction obligation.

    ``max_seconds`` bounds the whole run (each SAT call inherits the
    remaining wall clock; an exceeded deadline yields UNKNOWN).
    ``budget`` optionally attaches a :class:`repro.runtime.Budget`,
    whose exhaustion raises a structured ``EngineAbort`` instead.

    ``incremental`` (default) runs both loops on pooled persistent
    solver sessions (see module docstring); ``incremental=False`` is the
    legacy per-depth re-encode, kept as the ``--no-incremental`` escape
    hatch.  ``canonical_trace`` lexicographically minimizes the
    counterexample so both modes return the identical trace (used by the
    equivalence tests; costs one SAT call per free variable).
    """
    with obs.span(
        "mc.bmc",
        max_depth=max_depth,
        induction=induction,
        incremental=incremental,
    ) as phase:
        result = _bmc_run(
            circuit,
            prop,
            max_depth=max_depth,
            max_conflicts=max_conflicts,
            induction=induction,
            unique_states=unique_states,
            use_coi=use_coi,
            max_seconds=max_seconds,
            budget=budget,
            incremental=incremental,
            canonical_trace=canonical_trace,
        )
        phase.set(result=result.outcome.value, depth=result.depth)
        if result.induction_depth is not None:
            phase.set(induction_depth=result.induction_depth)
        return result


def _bmc_run(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    max_depth: int = 32,
    max_conflicts: Optional[int] = 200_000,
    induction: bool = True,
    unique_states: bool = False,
    use_coi: bool = True,
    max_seconds: Optional[float] = None,
    budget=None,
    incremental: bool = True,
    canonical_trace: bool = False,
) -> BmcResult:
    start = time.monotonic()
    deadline = (
        None if max_seconds is None else start + max_seconds
    )
    prop.validate_against(circuit)
    model = circuit
    if use_coi:
        coi = coi_registers(circuit, prop.signals())
        model = extract_subcircuit(
            circuit, coi, prop.signals(), name=f"{circuit.name}.coi"
        )
    bounded_session: Optional[SolverSession] = None
    induction_session: Optional[SolverSession] = None
    if incremental:
        bounded_session = solver_session(
            model, cycles=1, use_initial_state=True
        )
    for depth in range(max_depth + 1):
        if deadline is not None and time.monotonic() >= deadline:
            break
        if budget is not None:
            budget.checkpoint(engine="bmc")
        if incremental:
            trace = _bounded_step_incremental(
                bounded_session, prop, depth, max_conflicts,
                deadline, budget, canonical_trace,
            )
        else:
            trace = _bounded_step(
                model, prop, depth, max_conflicts, deadline, budget,
                canonical_trace,
            )
        if trace is not None:
            return BmcResult(
                BmcOutcome.FALSE,
                depth,
                trace=trace,
                seconds=time.monotonic() - start,
            )
        if induction and depth >= 1:
            if incremental:
                if induction_session is None:
                    induction_session = solver_session(
                        model,
                        cycles=depth + 1,
                        use_initial_state=False,
                        tag=_induction_tag(prop, unique_states),
                    )
                # A pooled session already carries permanent ~bad /
                # uniqueness constraints up to its high-water mark;
                # querying below it would be spuriously UNSAT.
                watermark = max(
                    induction_session.meta.get("nobad", 0),
                    induction_session.meta.get("uniq", 0),
                )
                if depth < watermark:
                    holds = None
                else:
                    holds = _induction_step_incremental(
                        induction_session, prop, depth, max_conflicts,
                        unique_states, deadline, budget,
                    )
            else:
                holds = _induction_step(
                    model, prop, depth, max_conflicts, unique_states,
                    deadline, budget,
                )
            if holds:
                return BmcResult(
                    BmcOutcome.TRUE,
                    depth,
                    induction_depth=depth,
                    seconds=time.monotonic() - start,
                )
    return BmcResult(
        BmcOutcome.UNKNOWN, max_depth, seconds=time.monotonic() - start
    )
