"""Approximate reachability by overlapping register partitions.

Section 5 of the paper plans "to prove the property on abstract models
containing hundreds of registers ... [using] the overlapping partition
technique from [5][7]" (Cho et al.'s approximate FSM traversal and
Govindaraju/Dill's overlapping projections).  This module implements that
extension:

- the registers are split into (possibly overlapping) *blocks*;
- each block gets its own forward fixpoint in which all other registers
  are free -- an over-approximation of the real reachable set projected
  onto the block;
- blocks constrain each other: a block's image is computed under the
  conjunction of every other block's current reached set, and the whole
  system is iterated to a simultaneous fixpoint (the "reached product"
  of interacting machine-by-machine traversal);
- the conjunction of the block invariants over-approximates the exact
  reachable states, so an empty intersection with the target states is a
  sound proof of unreachability.

BDD sizes stay bounded by the block width instead of the full register
count, trading precision for capacity.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bdd import Function
from repro.bdd.manager import BDDNodeLimit
from repro.mc.encode import SymbolicEncoding, next_var_name
from repro.mc.reach import ReachLimits


class ApproxOutcome(enum.Enum):
    PROVED = "proved"  # target states outside the over-approximation
    UNDECIDED = "undecided"  # target intersects the over-approximation
    RESOURCE_OUT = "resource_out"


@dataclass
class ApproxResult:
    outcome: ApproxOutcome
    blocks: List[List[str]]
    block_reached: List[Function] = field(default_factory=list)
    passes: int = 0
    seconds: float = 0.0

    def over_approximation(self) -> Function:
        """The conjunction of the block invariants."""
        if not self.block_reached:
            raise ValueError("no block results available")
        acc = self.block_reached[0]
        for fn in self.block_reached[1:]:
            acc = acc & fn
        return acc


def overlapping_blocks(
    registers: Sequence[str],
    block_size: int = 8,
    overlap: int = 2,
) -> List[List[str]]:
    """Sliding-window partition of the registers with ``overlap`` shared
    variables between neighbouring blocks (in encoding order, which
    follows the circuit's dependency structure)."""
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    if not 0 <= overlap < block_size:
        raise ValueError("overlap must satisfy 0 <= overlap < block_size")
    registers = list(registers)
    if len(registers) <= block_size:
        return [registers] if registers else []
    blocks = []
    stride = block_size - overlap
    start = 0
    while start < len(registers):
        block = registers[start:start + block_size]
        if len(block) < block_size and blocks:
            # Final remnant: extend backwards to full width instead of
            # creating a tiny imprecise block.
            block = registers[-block_size:]
            blocks.append(block)
            break
        blocks.append(block)
        if start + block_size >= len(registers):
            break
        start += stride
    return blocks


class ApproximateReach:
    """Interacting machine-by-machine approximate traversal."""

    def __init__(
        self,
        encoding: SymbolicEncoding,
        blocks: Optional[List[List[str]]] = None,
        block_size: int = 8,
        overlap: int = 2,
    ) -> None:
        self.encoding = encoding
        self.bdd = encoding.bdd
        self.blocks = blocks if blocks is not None else overlapping_blocks(
            encoding.current_vars, block_size=block_size, overlap=overlap
        )
        for block in self.blocks:
            unknown = set(block) - set(encoding.current_vars)
            if unknown:
                raise ValueError(f"unknown block registers: {sorted(unknown)}")
        # Per-block transition relation: conjunction of the block's
        # next-state constraints.
        self._block_relations: List[Function] = []
        for block in self.blocks:
            relation = self.bdd.true
            for reg in block:
                relation = relation & self.bdd.var(
                    next_var_name(reg)
                ).equiv(encoding.next_state_function(reg))
            self._block_relations.append(relation)

    def _project(self, fn: Function, block: List[str]) -> Function:
        keep = set(block)
        others = [
            name for name in self.encoding.current_vars if name not in keep
        ]
        return self.bdd.exists(others, fn)

    def _block_post(
        self, block_index: int, constraint: Function
    ) -> Function:
        """One approximate image of a block under the other blocks'
        invariants: exists(all current + inputs, constraint & T_block)
        renamed back to current variables."""
        block = self.blocks[block_index]
        quantified = list(self.encoding.current_vars) + list(
            self.encoding.input_vars
        )
        image_next = self.bdd.and_exists(
            constraint, self._block_relations[block_index], quantified
        )
        return self.bdd.rename(
            image_next, {next_var_name(r): r for r in block}
        )

    def run(
        self,
        init: Function,
        limits: Optional[ReachLimits] = None,
        max_passes: int = 64,
    ) -> ApproxResult:
        """Iterate all blocks to a simultaneous fixpoint."""
        limits = limits or ReachLimits()
        start = time.monotonic()
        reached = [self._project(init, block) for block in self.blocks]
        passes = 0
        saved_limit = self.bdd.node_limit
        if limits.max_nodes is not None:
            self.bdd.node_limit = max(
                limits.max_nodes * 4,
                len(self.bdd._level) + limits.max_nodes,
            )
        try:
            changed = True
            while changed and passes < max_passes:
                if limits.max_seconds is not None and (
                    time.monotonic() - start > limits.max_seconds
                ):
                    return ApproxResult(
                        ApproxOutcome.RESOURCE_OUT,
                        self.blocks,
                        reached,
                        passes,
                        time.monotonic() - start,
                    )
                passes += 1
                changed = False
                for index, block in enumerate(self.blocks):
                    # Constrain by the neighbouring blocks only: the full
                    # product could be as big as exact reachability, and
                    # dropping constraints is always sound (it merely
                    # loosens the over-approximation).
                    constraint = reached[index]
                    for j in (index - 1, index + 1):
                        if 0 <= j < len(reached):
                            constraint = constraint & reached[j]
                    image = self._block_post(index, constraint)
                    new = image - reached[index]
                    if not new.is_false:
                        reached[index] = reached[index] | image
                        changed = True
        except BDDNodeLimit:
            return ApproxResult(
                ApproxOutcome.RESOURCE_OUT,
                self.blocks,
                reached,
                passes,
                time.monotonic() - start,
            )
        finally:
            self.bdd.node_limit = saved_limit
        return ApproxResult(
            ApproxOutcome.UNDECIDED,  # refined by check_target below
            self.blocks,
            reached,
            passes,
            time.monotonic() - start,
        )

    def check_target(
        self,
        result: ApproxResult,
        target: Function,
    ) -> ApproxResult:
        """Classify a completed run against the target states: PROVED when
        the over-approximation excludes every target state."""
        if result.outcome is ApproxOutcome.RESOURCE_OUT:
            return result
        intersection = target
        for fn in result.block_reached:
            intersection = intersection & fn
            if intersection.is_false:
                result.outcome = ApproxOutcome.PROVED
                return result
        result.outcome = (
            ApproxOutcome.PROVED
            if intersection.is_false
            else ApproxOutcome.UNDECIDED
        )
        return result


def approximate_check(
    encoding: SymbolicEncoding,
    target: Function,
    block_size: int = 8,
    overlap: int = 2,
    limits: Optional[ReachLimits] = None,
) -> ApproxResult:
    """Convenience wrapper: partition, traverse, classify."""
    approx = ApproximateReach(
        encoding, block_size=block_size, overlap=overlap
    )
    result = approx.run(encoding.initial_states(), limits=limits)
    return approx.check_target(result, target)
