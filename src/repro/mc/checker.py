"""Plain BDD-based symbolic model checking with COI reduction.

This is the baseline RFN is compared against in Table 1: reduce the design
to the cone of influence of the property signals, build the symbolic
transition relation for *all* COI registers, and run the forward fixpoint.
On designs whose COI holds thousands of registers this predictably
exhausts its resource limits -- "our symbolic model checker failed to
verify any of the above five properties" (Section 3) -- which is the whole
motivation for abstraction refinement.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bdd import BDD
from repro.bdd.manager import BDDNodeLimit
from repro.core.property import UnreachabilityProperty
from repro.trace import Trace
from repro.mc.encode import SymbolicEncoding
from repro.mc.images import ImageComputer
from repro.mc.reach import ReachLimits, ReachOutcome, forward_reach
from repro.netlist.circuit import Circuit
from repro.netlist.ops import coi_registers, extract_subcircuit


class CheckOutcome(enum.Enum):
    TRUE = "true"
    FALSE = "false"
    RESOURCE_OUT = "resource_out"


@dataclass
class CheckResult:
    outcome: CheckOutcome
    seconds: float
    iterations: int
    coi_registers: int
    trace: Optional[Trace] = None

    @property
    def verified(self) -> bool:
        return self.outcome is CheckOutcome.TRUE


def model_check_coi(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    limits: Optional[ReachLimits] = None,
    produce_trace: bool = True,
) -> CheckResult:
    """Check an unreachability property on the COI-reduced design."""
    start = time.monotonic()
    prop.validate_against(circuit)
    coi = coi_registers(circuit, prop.signals())
    reduced = extract_subcircuit(
        circuit, coi, prop.signals(), name=f"{circuit.name}.coi"
    )
    manager = BDD()
    manager.auto_reorder = True
    if limits is not None and limits.max_nodes is not None:
        # Bound the encoding build itself, not just the fixpoint.
        manager.node_limit = limits.max_nodes * 4
    try:
        encoding = SymbolicEncoding(reduced, bdd=manager)
        images = ImageComputer(encoding)
        target = encoding.state_cube(dict(prop.target))
    except BDDNodeLimit:
        return CheckResult(
            CheckOutcome.RESOURCE_OUT,
            time.monotonic() - start,
            0,
            len(coi),
        )
    result = forward_reach(
        images,
        encoding.initial_states(),
        target=target,
        limits=limits,
        step_hook=lambda _i, _r: encoding.bdd.maybe_sift(),
    )
    elapsed = time.monotonic() - start
    if result.outcome is ReachOutcome.FIXPOINT:
        return CheckResult(CheckOutcome.TRUE, elapsed, result.iterations, len(coi))
    if result.outcome is ReachOutcome.RESOURCE_OUT:
        return CheckResult(
            CheckOutcome.RESOURCE_OUT, elapsed, result.iterations, len(coi)
        )
    trace = None
    if produce_trace:
        trace = _extract_error_trace(encoding, images, result, target)
    return CheckResult(
        CheckOutcome.FALSE,
        time.monotonic() - start,
        result.iterations,
        len(coi),
        trace=trace,
    )


def _extract_error_trace(
    encoding: SymbolicEncoding,
    images: ImageComputer,
    reach_result,
    target,
) -> Trace:
    """Standard BDD trace construction by backwards pre-image through the
    onion rings.  This is the step that dies on abstract models with many
    primary inputs, motivating the hybrid engine (Section 2.2)."""
    bdd = encoding.bdd
    hit = reach_result.hit_ring
    rings = reach_result.rings
    state_vars = set(encoding.current_vars)
    # Pick a total bad state in the last ring, then walk back through the
    # rings one total state at a time (completing a cube's don't-cares
    # keeps it inside the set, since skipped BDD levels are free).
    states: List[Dict[str, int]] = []
    choice = bdd.pick_cube(rings[hit] & target)
    total = _complete_state(encoding, _state_part(choice, state_vars))
    states.append(total)
    current = bdd.cube(total)
    for ring_index in range(hit - 1, -1, -1):
        pred = images.pre_image(current) & rings[ring_index]
        choice = bdd.pick_cube(pred)
        total = _complete_state(encoding, _state_part(choice, state_vars))
        current = bdd.cube(total)
        states.append(total)
    states.reverse()
    # Recover input vectors cycle by cycle: inputs consistent with the
    # transition from states[i] to states[i+1].
    inputs: List[Dict[str, int]] = []
    input_vars = list(encoding.input_vars)
    for i in range(len(states) - 1):
        constraint = bdd.cube(states[i])
        for reg, value in states[i + 1].items():
            fn = encoding.next_state_function(reg)
            constraint = constraint & (fn if value else ~fn)
        choice = bdd.pick_cube(constraint) or {}
        inputs.append(
            {n: choice.get(n, 0) for n in input_vars}
        )
    inputs.append({n: 0 for n in input_vars})
    return Trace(
        states=states,
        inputs=inputs,
        circuit_name=encoding.circuit.name,
    )


def _state_part(cube: Optional[Dict[str, int]], state_vars) -> Dict[str, int]:
    if cube is None:
        return {}
    return {k: v for k, v in cube.items() if k in state_vars}


def _complete_state(encoding: SymbolicEncoding, cube: Dict[str, int]) -> Dict[str, int]:
    """Fill unassigned registers with 0 to make the state total."""
    return {name: cube.get(name, 0) for name in encoding.current_vars}
