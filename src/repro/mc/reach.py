"""Forward reachability with onion rings and on-the-fly target checks.

This is the fixpoint engine of RFN Step 2 (and of the plain-model-checker
baseline): compute the post-image sequence ``S_0 = A``, ``S_i =
post(S_{i-1})``, accumulate the reached set, stop when it closes (property
True on this model) or when a target state shows up in some ``S_k``.  The
rings ``S_1..S_k`` are kept because the hybrid trace engine walks them
backwards (Section 2.2).

Resource limits (iterations, BDD nodes, wall-clock) end the run with the
``RESOURCE_OUT`` outcome -- the honest answer a Python BDD engine must
give on designs the paper's C engines also found hard.  When a runtime
:class:`~repro.runtime.budget.Budget` is attached via
``ReachLimits.budget``, its deadline/memory watermark is polled inside
image computations (through the manager's ``checkpoint_hook``) and the
abort is folded into the same ``RESOURCE_OUT`` outcome with the
exhausted resource recorded in ``ReachResult.abort_resource``.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bdd import Function
from repro.kernel.perf import PERF
from repro.mc.images import ImageComputer
from repro.obs import tracer as obs
from repro.runtime.abort import EngineAbort
from repro.runtime.budget import Budget


class ReachOutcome(enum.Enum):
    FIXPOINT = "fixpoint"  # closed without hitting the target
    TARGET_HIT = "target_hit"
    RESOURCE_OUT = "resource_out"


@dataclass
class ReachLimits:
    max_iterations: Optional[int] = None
    max_nodes: Optional[int] = 2_000_000
    max_seconds: Optional[float] = None
    #: optional runtime budget polled inside image computations
    budget: Optional[Budget] = None


@dataclass
class ReachResult:
    outcome: ReachOutcome
    reached: Function
    rings: List[Function] = field(default_factory=list)  # S_0 .. S_k
    iterations: int = 0
    hit_ring: Optional[int] = None
    seconds: float = 0.0
    #: which resource forced RESOURCE_OUT ("nodes", "time", ...), if known
    abort_resource: Optional[str] = None

    @property
    def fixpoint_reached(self) -> bool:
        return self.outcome is ReachOutcome.FIXPOINT


def forward_reach(
    images: ImageComputer,
    init: Function,
    target: Optional[Function] = None,
    limits: Optional[ReachLimits] = None,
    keep_rings: bool = True,
    step_hook: Optional[Callable[[int, Function], None]] = None,
) -> ReachResult:
    """Forward fixpoint from ``init``; stops early when ``target``
    intersects a ring.

    ``step_hook(iteration, reached)`` runs after every image step --
    RFN uses it to trigger dynamic variable reordering at safe points.
    """
    limits = limits or ReachLimits()
    budget = limits.budget
    bdd = images.bdd
    start = time.monotonic()
    reached = init
    frontier = init
    rings: List[Function] = [init]
    iteration = 0
    phase = obs.span("mc.reach", registers=len(images.encoding.circuit.registers))

    # A hard allocation ceiling turns a blowup *inside* one image step
    # into a clean RESOURCE_OUT (the soft per-step check only runs between
    # steps).  Allocation is append-only, so leave generous headroom.
    saved_node_limit = bdd.node_limit
    max_nodes = limits.max_nodes
    if budget is not None and budget.max_bdd_nodes is not None:
        max_nodes = (
            budget.max_bdd_nodes
            if max_nodes is None
            else min(max_nodes, budget.max_bdd_nodes)
        )
    if max_nodes is not None:
        bdd.node_limit = max(
            max_nodes * 4, len(bdd._level) + max_nodes
        )
    # The checkpoint hook lets the budget's deadline fire *inside* one
    # enormous image computation, not just between fixpoint steps.
    saved_hook = bdd.checkpoint_hook
    if budget is not None:
        bdd.checkpoint_hook = budget.hook("bdd")

    def make_result(
        outcome: ReachOutcome,
        hit: Optional[int] = None,
        resource: Optional[str] = None,
    ):
        bdd.node_limit = saved_node_limit
        bdd.checkpoint_hook = saved_hook
        PERF.gauge("bdd.nodes", bdd.total_nodes())
        phase.set(
            result=outcome.value,
            iterations=iteration,
            nodes=bdd.total_nodes(),
        )
        if resource is not None:
            phase.set(resource=resource)
        phase.__exit__(None, None, None)
        return ReachResult(
            outcome=outcome,
            reached=reached,
            rings=rings if keep_rings else [],
            iterations=iteration,
            hit_ring=hit,
            seconds=time.monotonic() - start,
            abort_resource=resource,
        )

    if target is not None and not (init & target).is_false:
        return make_result(ReachOutcome.TARGET_HIT, hit=0)

    while True:
        if limits.max_iterations is not None and iteration >= limits.max_iterations:
            return make_result(
                ReachOutcome.RESOURCE_OUT, resource="iterations"
            )
        if limits.max_seconds is not None and (
            time.monotonic() - start > limits.max_seconds
        ):
            return make_result(ReachOutcome.RESOURCE_OUT, resource="time")
        if max_nodes is not None and bdd.total_nodes() > max_nodes:
            bdd.collect_garbage()
            if bdd.total_nodes() > max_nodes:
                return make_result(
                    ReachOutcome.RESOURCE_OUT, resource="nodes"
                )
        iteration += 1
        try:
            if budget is not None:
                budget.checkpoint(engine="reach")
            image = images.post_image(frontier)
            new = image - reached
        except EngineAbort as abort:
            # BDDNodeLimit is a NodesOut, so real allocation blowups and
            # budget deadline/memory aborts both land here.
            return make_result(
                ReachOutcome.RESOURCE_OUT, resource=abort.resource
            )
        if new.is_false:
            return make_result(ReachOutcome.FIXPOINT)
        if keep_rings:
            rings.append(image)
        reached = reached | image
        if target is not None and not (image & target).is_false:
            return make_result(ReachOutcome.TARGET_HIT, hit=iteration)
        frontier = image
        if step_hook is not None:
            step_hook(iteration, reached)
