"""Circuit-to-BDD symbolic encoding.

Each register output gets a *current-state* variable (its own name) and a
*next-state* partner named ``<name>#next``; the pair is declared adjacently
and fused into a BDD sifting group, so dynamic reordering keeps image
renaming a monotone remap.  Primary inputs get one variable each.

The static variable order is a DFS over the next-state cones (inputs and
registers appear roughly where their logic consumes them), which is the
usual "interleaved, locality-following" starting order.  RFN passes a
saved order from the previous refinement iteration when one exists
(Section 2.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.bdd import BDD, Function
from repro.kernel.scache import static_order as _cached_static_order
from repro.netlist.cell import GateOp
from repro.netlist.circuit import Circuit

NEXT_SUFFIX = "#next"


def next_var_name(register: str) -> str:
    return register + NEXT_SUFFIX


def static_variable_order(circuit: Circuit, roots: Iterable[str] = ()) -> List[str]:
    """State/input signal names in DFS order over the combinational cones
    of the register data inputs (and any extra roots)."""
    order: List[str] = []
    seen: Set[str] = set()

    def visit(sig: str) -> None:
        stack = [sig]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            gate = circuit.gates.get(name)
            if gate is None:
                seen.add(name)
                order.append(name)
            else:
                seen.add(name)
                stack.extend(reversed(gate.inputs))

    for root in roots:
        visit(root)
    for reg_out, reg in circuit.registers.items():
        if reg_out not in seen:
            seen.add(reg_out)
            order.append(reg_out)
        visit(reg.data)
    for name in circuit.inputs:
        if name not in seen:
            seen.add(name)
            order.append(name)
    return order


class SymbolicEncoding:
    """BDD view of a circuit: variables, gate functions, next-state
    functions and initial-state predicate."""

    def __init__(
        self,
        circuit: Circuit,
        bdd: Optional[BDD] = None,
        var_order: Optional[Sequence[str]] = None,
        extra_roots: Iterable[str] = (),
    ) -> None:
        self.circuit = circuit
        self.bdd = bdd or BDD()
        order = self._resolve_order(var_order, extra_roots)
        self.current_vars: List[str] = []
        self.next_vars: List[str] = []
        self.input_vars: List[str] = []
        for name in order:
            if circuit.is_register_output(name):
                self.bdd.declare(name)
                self.bdd.declare(next_var_name(name))
                self.bdd.group([name, next_var_name(name)])
                self.current_vars.append(name)
                self.next_vars.append(next_var_name(name))
            else:
                self.bdd.declare(name)
                self.input_vars.append(name)
        self._functions: Dict[str, Function] = {}
        self._build_functions()

    def _resolve_order(
        self,
        var_order: Optional[Sequence[str]],
        extra_roots: Iterable[str],
    ) -> List[str]:
        # Memoized through the kernel's structural cache: re-encoding the
        # same (unmutated) model in a later CEGAR step skips the DFS.
        natural = _cached_static_order(
            self.circuit,
            lambda: static_variable_order(self.circuit, extra_roots),
            extra_roots,
        )
        if var_order is None:
            return natural
        # Keep the saved order for signals that still exist, then append
        # the new ones in natural position order.
        existing = set(natural)
        kept = [
            name
            for name in var_order
            if name in existing and not name.endswith(NEXT_SUFFIX)
        ]
        kept_set = set(kept)
        return kept + [name for name in natural if name not in kept_set]

    def _build_functions(self) -> None:
        bdd = self.bdd
        for name in self.circuit.inputs:
            self._functions[name] = bdd.var(name)
        for name in self.circuit.registers:
            self._functions[name] = bdd.var(name)
        for gate in self.circuit.topo_gates():
            inputs = [self._functions[s] for s in gate.inputs]
            self._functions[gate.output] = self._eval_gate(gate.op, inputs)

    def _eval_gate(self, op: GateOp, inputs: List[Function]) -> Function:
        bdd = self.bdd
        if op is GateOp.AND or op is GateOp.NAND:
            acc = bdd.true
            for f in inputs:
                acc = acc & f
            return ~acc if op is GateOp.NAND else acc
        if op is GateOp.OR or op is GateOp.NOR:
            acc = bdd.false
            for f in inputs:
                acc = acc | f
            return ~acc if op is GateOp.NOR else acc
        if op is GateOp.NOT:
            return ~inputs[0]
        if op is GateOp.BUF:
            return inputs[0]
        if op is GateOp.XOR or op is GateOp.XNOR:
            acc = bdd.false
            for f in inputs:
                acc = acc ^ f
            return ~acc if op is GateOp.XNOR else acc
        if op is GateOp.MUX:
            return bdd.ite(inputs[0], inputs[2], inputs[1])
        if op is GateOp.CONST0:
            return bdd.false
        if op is GateOp.CONST1:
            return bdd.true
        raise ValueError(f"unknown gate op {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------

    def function_of(self, signal: str) -> Function:
        """The BDD of any signal over current-state and input variables."""
        return self._functions[signal]

    def next_state_function(self, register: str) -> Function:
        return self._functions[self.circuit.registers[register].data]

    def initial_states(self) -> Function:
        """The predicate A over current-state variables; free-init
        registers are unconstrained."""
        cube = {
            name: reg.init
            for name, reg in self.circuit.registers.items()
            if reg.init is not None
        }
        return self.bdd.cube(cube)

    def state_cube(self, assignment: Dict[str, int]) -> Function:
        """A cube over current-state (and possibly input) variables."""
        return self.bdd.cube(assignment)

    def rename_next_to_current(self, f: Function) -> Function:
        return self.bdd.rename(
            f, {next_var_name(r): r for r in self.current_vars}
        )

    def rename_current_to_next(self, f: Function) -> Function:
        return self.bdd.rename(
            f, {r: next_var_name(r) for r in self.current_vars}
        )

    def saved_order(self) -> List[str]:
        """The current variable order, restricted to current-state and
        input variables -- what RFN persists between iterations."""
        return [
            name
            for name in self.bdd.var_order()
            if not name.endswith(NEXT_SUFFIX)
        ]
