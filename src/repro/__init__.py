"""RFN: formal property verification by abstraction refinement.

A from-scratch Python reproduction of "Formal Property Verification by
Abstraction Refinement with Formal, Simulation and Hybrid Engines"
(Wang et al., DAC 2001).

Subpackages
-----------
``repro.netlist``
    Gate-level design model and structural operations.
``repro.bdd``
    From-scratch ROBDD package (the paper used CUDD).
``repro.sat`` / ``repro.atpg``
    CDCL SAT core and the combinational/sequential ATPG engines built on it.
``repro.sim``
    3-valued and random gate-level simulation.
``repro.mincut``
    Free-cut / min-cut subcircuit extraction (max-flow based).
``repro.mc``
    BDD-based symbolic model checking (images, reachability, COI baseline).
``repro.core``
    The RFN abstraction-refinement loop, the BDD-ATPG hybrid trace engine,
    guided sequential ATPG, two-phase refinement, coverage-state analysis
    and the BFS-abstraction baseline.
``repro.designs``
    Parameterized benchmark design generators mirroring the paper's
    evaluation workloads.
"""

__version__ = "0.1.0"
