"""Deterministic fault injection for the engine runtime.

A :class:`ChaosMonkey` sits between the portfolio supervisor and the
engines and, on a seeded or explicitly planned schedule, makes an engine
call fail exactly the way real blowups do:

========  ======================================================
fault     effect on the wrapped call
========  ======================================================
timeout   raises :class:`~repro.runtime.abort.Timeout` (injected)
nodes     raises the real ``bdd.manager.BDDNodeLimit``
memory    raises ``MemoryError``
garbage   replaces the engine's result with a :class:`Garbage`
          sentinel (a corrupted verdict the supervisor must catch)
sleep     hangs the call (``time.sleep``), emulating a wedged
          solver -- only a watchdog can recover
crash     hard process death (``os._exit``), emulating a segfault
          or OOM kill -- nothing in-process can contain it
========  ======================================================

The first four are *contained* faults (:data:`FAULTS`): the supervisor
catches them in-process.  ``sleep`` and ``crash``
(:data:`PROCESS_FAULTS`) are deliberately uncontainable; they exist to
exercise the service layer's heartbeat watchdog and worker-death
requeue paths (:mod:`repro.serve`), and are rejected by the in-process
supervisor test matrix by construction (it parametrizes over
:data:`FAULTS` only).

Schedules are fully deterministic: an explicit *plan* names the call
indices to break (``{"hybrid": {0: "timeout"}}`` breaks only the first
hybrid call; ``{"reach": "nodes"}`` breaks every reach call), and the
seeded *rate* mode hashes ``(seed, site, call_index)`` so the same seed
always injects the same faults.  Tests use this to prove the supervisor
contains every fault class at every site.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.runtime.abort import Timeout

#: Contained faults: the supervisor catches these in-process.
FAULTS: Tuple[str, ...] = ("timeout", "nodes", "memory", "garbage")

#: Uncontainable process-level faults: a hung call and a hard death.
#: Only the service watchdog / worker-pool layer can recover from them.
PROCESS_FAULTS: Tuple[str, ...] = ("sleep", "crash")

ALL_FAULTS: Tuple[str, ...] = FAULTS + PROCESS_FAULTS

#: How long a ``sleep`` fault hangs.  Long enough that only a watchdog
#: preemption ends the call, short enough that a watchdog bug cannot
#: wedge a test run forever.
SLEEP_FAULT_SECONDS = 600.0

#: Exit code of a ``crash`` fault (visible as the worker's exitcode).
CRASH_FAULT_EXITCODE = 86

PlanSpec = Mapping[str, Union[str, Mapping[int, str]]]


class Garbage:
    """Sentinel standing in for a corrupted engine result.  The
    supervisor rejects it before any validator runs, so a garbage
    verdict can never leak into a caller."""

    def __init__(self, site: str) -> None:
        self.site = site

    def __repr__(self) -> str:
        return f"Garbage(site={self.site!r})"


class ChaosError(ValueError):
    """Raised for malformed chaos specifications."""


class ChaosMonkey:
    """Deterministic fault injector (see module docstring).

    ``plan`` maps a site name to either a fault string (every call) or
    a ``{call_index: fault}`` mapping.  With no plan, ``rate`` > 0
    injects seeded-pseudo-random faults drawn from ``faults``.
    ``max_injections`` caps the total faults injected (so a high-rate
    monkey cannot starve a run forever).
    """

    def __init__(
        self,
        plan: Optional[PlanSpec] = None,
        seed: int = 0,
        rate: float = 0.0,
        faults: Sequence[str] = FAULTS,
        max_injections: Optional[int] = None,
    ) -> None:
        self.plan: Dict[str, Union[str, Dict[int, str]]] = {}
        for site, spec in (plan or {}).items():
            if isinstance(spec, str):
                self._check_fault(spec)
                self.plan[site] = spec
            else:
                entry = {int(k): v for k, v in spec.items()}
                for fault in entry.values():
                    self._check_fault(fault)
                self.plan[site] = entry
        self.seed = seed
        self.rate = rate
        self.faults = tuple(faults)
        for fault in self.faults:
            self._check_fault(fault)
        self.max_injections = max_injections
        self.calls: Dict[str, int] = {}
        self.injections: List[Tuple[str, int, str]] = []
        self._pending_garbage: Dict[str, bool] = {}

    @staticmethod
    def _check_fault(fault: str) -> None:
        if fault not in ALL_FAULTS:
            raise ChaosError(
                f"unknown fault {fault!r}; expected one of {ALL_FAULTS}"
            )

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "ChaosMonkey":
        """Parse a CLI chaos spec.

        Grammar: ``site=fault[@index][,site=fault[@index]]...`` -- an
        ``@index`` limits the fault to that 0-based call, otherwise the
        site fails on every call.  Example:
        ``"hybrid=timeout@0,reach=nodes"``.
        """
        plan: Dict[str, Union[str, Dict[int, str]]] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ChaosError(
                    f"bad chaos item {item!r}; use site=fault[@index]"
                )
            site, _, fault = item.partition("=")
            site = site.strip()
            fault = fault.strip()
            index: Optional[int] = None
            if "@" in fault:
                fault, _, idx_text = fault.partition("@")
                try:
                    index = int(idx_text)
                except ValueError:
                    raise ChaosError(
                        f"bad chaos call index {idx_text!r} in {item!r}"
                    ) from None
            cls._check_fault(fault)
            if index is None:
                plan[site] = fault
            else:
                entry = plan.setdefault(site, {})
                if isinstance(entry, str):
                    raise ChaosError(
                        f"site {site!r} given both every-call and "
                        f"indexed faults"
                    )
                entry[index] = fault
        if not plan:
            raise ChaosError(f"empty chaos spec {spec!r}")
        return cls(plan=plan)

    # ------------------------------------------------------------------

    def _hash_fraction(self, site: str, index: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def fault_for(self, site: str, index: int) -> Optional[str]:
        """The fault scheduled for call ``index`` of ``site`` (pure;
        does not advance counters)."""
        planned = self.plan.get(site)
        if isinstance(planned, str):
            return planned
        if isinstance(planned, dict):
            return planned.get(index)
        if self.plan:
            return None  # explicit plan: unlisted sites are healthy
        if self.rate <= 0.0:
            return None
        fraction = self._hash_fraction(site, index)
        if fraction >= self.rate:
            return None
        pick = int(fraction / self.rate * len(self.faults))
        return self.faults[min(pick, len(self.faults) - 1)]

    def _spent(self) -> bool:
        return (
            self.max_injections is not None
            and len(self.injections) >= self.max_injections
        )

    def before(self, site: str) -> None:
        """Chaos point at the start of one engine call.  Raises the
        scheduled fault, or arms a garbage substitution for
        :meth:`mangle` to apply to the call's result."""
        index = self.calls.get(site, 0)
        self.calls[site] = index + 1
        self._pending_garbage[site] = False
        if self._spent():
            return
        fault = self.fault_for(site, index)
        if fault is None:
            return
        if fault == "garbage":
            self._pending_garbage[site] = True
            self.injections.append((site, index, fault))
            return
        self.injections.append((site, index, fault))
        detail = f"chaos: injected {fault} in {site!r} (call {index})"
        if fault == "timeout":
            raise Timeout(detail, engine=site, injected=True)
        if fault == "memory":
            raise MemoryError(detail)
        if fault == "sleep":
            import time

            time.sleep(SLEEP_FAULT_SECONDS)
            # A watchdog normally SIGKILLs the process long before the
            # sleep returns; degrade to a timeout if one never comes.
            raise Timeout(detail, engine=site, injected=True)
        if fault == "crash":
            import os

            # Hard death: no atexit, no finally blocks, no envelope --
            # exactly what a segfault or the kernel OOM killer does.
            os._exit(CRASH_FAULT_EXITCODE)
        # fault == "nodes": raise the genuine manager exception so the
        # containment tests exercise the exact production type.
        from repro.bdd.manager import BDDNodeLimit

        error = BDDNodeLimit(detail)
        error.engine = site
        error.injected = True
        raise error

    def mangle(self, site: str, value):
        """Chaos point on an engine call's result: substitute garbage
        when :meth:`before` armed it."""
        if self._pending_garbage.pop(site, False):
            return Garbage(site)
        return value

    def stats(self) -> dict:
        return {
            "calls": dict(self.calls),
            "injections": [list(i) for i in self.injections],
        }

    def __repr__(self) -> str:
        mode = f"plan={self.plan!r}" if self.plan else (
            f"seed={self.seed}, rate={self.rate}"
        )
        return f"ChaosMonkey({mode}, injected={len(self.injections)})"
