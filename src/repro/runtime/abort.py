"""The structured ``EngineAbort`` exception taxonomy.

Every engine in the repro (SAT, BDD, reachability, ATPG, the kernel
simulator) can exhaust a resource mid-run.  Historically each reported
that differently -- ``SatStatus.UNKNOWN`` return codes, a raw
``BDDNodeLimit``, ad-hoc time checks -- which made it impossible for a
caller to tell *what* ran out and whether retrying with a bigger budget
could help.  This module is the single vocabulary: one base class with a
``resource`` tag, one subclass per exhaustible resource, and an
``injected`` flag so the chaos harness (:mod:`repro.runtime.chaos`) can
raise the very same exceptions the real engines do.

Design rule: engine-*local* budgets (``AtpgBudget`` conflict caps,
``ReachLimits``) keep their historical return-code semantics; the
*runtime* :class:`~repro.runtime.budget.Budget` is exception-based and
raises these aborts from its cooperative ``checkpoint()``/``charge()``
calls.  The portfolio supervisor is the only layer that catches them.
"""

from __future__ import annotations

from typing import Dict, Optional, Type


class EngineAbort(Exception):
    """An engine stopped because a resource ran out (or a fault was
    injected).  ``resource`` names what ran out; ``engine`` names the
    engine/step that was running; ``injected`` marks chaos faults."""

    resource: str = "resource"

    def __init__(
        self,
        detail: str = "",
        *,
        engine: Optional[str] = None,
        resource: Optional[str] = None,
        injected: bool = False,
    ) -> None:
        if resource is not None:
            self.resource = resource
        self.detail = detail or self.resource
        self.engine = engine
        self.injected = injected
        super().__init__(self.detail)

    def describe(self) -> str:
        where = f" in {self.engine}" if self.engine else ""
        tag = " (injected)" if self.injected else ""
        return f"{self.resource} exhausted{where}{tag}: {self.detail}"


class Timeout(EngineAbort):
    """Wall-clock deadline passed."""

    resource = "time"


class ConflictsOut(EngineAbort):
    """SAT conflict budget exhausted."""

    resource = "conflicts"


class DecisionsOut(EngineAbort):
    """SAT decision budget exhausted."""

    resource = "decisions"


class NodesOut(EngineAbort):
    """BDD node budget exhausted (``bdd.manager.BDDNodeLimit`` is a
    subclass, so catching ``NodesOut`` catches real manager blowups)."""

    resource = "nodes"


class MemoryOut(EngineAbort):
    """Process memory watermark exceeded."""

    resource = "memory"


class DepthOut(EngineAbort):
    """A bounded search (BMC fallback) exhausted its depth without an
    answer."""

    resource = "depth"


class InjectedFault(EngineAbort):
    """A chaos-harness fault with no real-engine counterpart (garbage
    verdicts, invalid results)."""

    resource = "injected-fault"

    def __init__(self, detail: str = "", **kwargs) -> None:
        kwargs.setdefault("injected", True)
        super().__init__(detail, **kwargs)


#: resource tag -> abort class, for reconstructing aborts from
#: serialized checkpoints and reach results.
ABORT_BY_RESOURCE: Dict[str, Type[EngineAbort]] = {
    cls.resource: cls
    for cls in (
        Timeout,
        ConflictsOut,
        DecisionsOut,
        NodesOut,
        MemoryOut,
        DepthOut,
        InjectedFault,
    )
}
