"""repro.runtime -- the resilience layer.

Unified budgets with cooperative deadlines (:mod:`~repro.runtime.budget`),
a structured abort taxonomy (:mod:`~repro.runtime.abort`), the portfolio
supervisor with retry/fallback (:mod:`~repro.runtime.supervisor`),
CEGAR checkpoint/resume (:mod:`~repro.runtime.checkpoint`), and the
deterministic fault-injection harness (:mod:`~repro.runtime.chaos`).

This package is deliberately dependency-free within the repro: nothing
here imports the engines, so every engine can import the runtime.
"""

from repro.runtime.abort import (
    ABORT_BY_RESOURCE,
    ConflictsOut,
    DecisionsOut,
    DepthOut,
    EngineAbort,
    InjectedFault,
    MemoryOut,
    NodesOut,
    Timeout,
)
from repro.runtime.budget import Budget, process_rss_mb
from repro.runtime.chaos import (
    ALL_FAULTS,
    FAULTS,
    PROCESS_FAULTS,
    ChaosError,
    ChaosMonkey,
    Garbage,
)
from repro.runtime.fsio import atomic_write_text, fsync_dir
from repro.runtime.checkpoint import CHECKPOINT_VERSION, RfnCheckpoint
from repro.runtime.supervisor import (
    CONTAINED,
    AbortInfo,
    StepResult,
    Supervisor,
)

__all__ = [
    "ABORT_BY_RESOURCE",
    "ALL_FAULTS",
    "AbortInfo",
    "Budget",
    "CHECKPOINT_VERSION",
    "CONTAINED",
    "ChaosError",
    "ChaosMonkey",
    "ConflictsOut",
    "DecisionsOut",
    "DepthOut",
    "EngineAbort",
    "FAULTS",
    "Garbage",
    "InjectedFault",
    "MemoryOut",
    "NodesOut",
    "PROCESS_FAULTS",
    "RfnCheckpoint",
    "StepResult",
    "Supervisor",
    "Timeout",
    "atomic_write_text",
    "fsync_dir",
    "process_rss_mb",
]
