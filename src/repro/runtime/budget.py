"""The unified resource budget with cooperative ``checkpoint()`` polling.

One :class:`Budget` carries every limit a verification run can have --
wall-clock deadline, SAT conflicts/decisions, BDD nodes, a process
memory watermark -- and is threaded *into* the engines' hot loops:

- ``sat.solver.Solver.solve(budget=...)`` charges conflicts/decisions
  and polls the deadline every few dozen decisions,
- ``bdd.manager.BDD.checkpoint_hook`` polls it every few thousand node
  allocations (so a single enormous image computation still aborts),
- ``mc.reach.forward_reach`` polls it per fixpoint iteration,
- ``kernel.bitsim.BitParallelSimulator`` polls it between plan segments,
- the RFN loop polls it per CEGAR iteration.

When a limit trips, the budget raises the matching
:class:`~repro.runtime.abort.EngineAbort` subtype; only the portfolio
supervisor catches those.  Sub-budgets (:meth:`sub`) let the supervisor
give one step a slice of the remaining time while still charging the
parent, so no retry cascade can overrun the top-level deadline.

Budgets serialize their *spent* side (:meth:`spent`, :meth:`to_json`)
so checkpoint files can report cumulative cost across resumed runs.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Optional

from repro.runtime.abort import (
    ConflictsOut,
    DecisionsOut,
    MemoryOut,
    NodesOut,
    Timeout,
)


_TRACER = None


def _tracer():
    """The obs tracer, resolved lazily (keeps this module import-light
    for the kernel layer that shares it) and cached."""
    global _TRACER
    if _TRACER is None:
        from repro.obs.tracer import TRACER as _TRACER_IMPORT

        _TRACER = _TRACER_IMPORT
    return _TRACER


def process_rss_mb() -> Optional[float]:
    """Peak resident-set size of this process in MiB, or None when the
    platform has no ``resource`` module (Windows)."""
    try:
        import resource as _resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


class Budget:
    """A unified, hierarchical resource budget.

    ``None`` limits are unlimited.  All wall-clock accounting uses
    ``time.monotonic()``; ``deadline`` is the absolute monotonic instant
    the budget expires (the form the SAT solver consumes directly).
    """

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_decisions: Optional[int] = None,
        max_bdd_nodes: Optional[int] = None,
        max_memory_mb: Optional[float] = None,
        name: str = "run",
        parent: Optional["Budget"] = None,
        prior: Optional[Dict[str, float]] = None,
    ) -> None:
        self.max_seconds = max_seconds
        self.max_conflicts = max_conflicts
        self.max_decisions = max_decisions
        self.max_bdd_nodes = max_bdd_nodes
        self.max_memory_mb = max_memory_mb
        self.name = name
        self.parent = parent
        self.conflicts = 0
        self.decisions = 0
        # Spent totals carried over from a resumed run (reporting only;
        # they do not shrink this run's limits).
        self.prior: Dict[str, float] = dict(prior or {})
        self._start = time.monotonic()
        # Last wall-clock decile (0-10) announced to the trace.
        self._decile = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds spent in *this* run (prior runs excluded)."""
        return time.monotonic() - self._start

    @property
    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic()`` instant this budget expires,
        intersected with every ancestor's deadline."""
        own = (
            None
            if self.max_seconds is None
            else self._start + self.max_seconds
        )
        if self.parent is not None:
            up = self.parent.deadline
            if up is not None:
                own = up if own is None else min(own, up)
        return own

    def remaining_seconds(self) -> Optional[float]:
        deadline = self.deadline
        if deadline is None:
            return None
        return max(0.0, deadline - time.monotonic())

    def expired(self) -> bool:
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0.0

    # ------------------------------------------------------------------
    # Cooperative polling
    # ------------------------------------------------------------------

    def checkpoint(self, engine: Optional[str] = None) -> None:
        """Poll the deadline and memory watermark; raise on exhaustion.

        This is the call wired into every engine's hot loop.  It is
        cheap (one ``time.monotonic()``) and safe to invoke thousands of
        times per second.
        """
        deadline = self.deadline
        now = time.monotonic()
        if self.max_seconds is not None:
            tracer = _tracer()
            if tracer.enabled:
                decile = min(
                    10, int(10.0 * (now - self._start) / self.max_seconds)
                )
                if decile > self._decile:
                    self._decile = decile
                    spent = self.spent()
                    tracer.event(
                        "budget.spend",
                        {
                            "budget": self.name,
                            "decile": decile,
                            "engine": engine,
                            "seconds": spent["seconds"],
                            "conflicts": spent["conflicts"],
                            "decisions": spent["decisions"],
                        },
                    )
        if deadline is not None and now >= deadline:
            raise Timeout(
                f"budget {self.name!r} deadline passed after "
                f"{self.elapsed():.3f}s",
                engine=engine,
            )
        if self.max_memory_mb is not None:
            rss = process_rss_mb()
            if rss is not None and rss > self.max_memory_mb:
                raise MemoryOut(
                    f"budget {self.name!r}: RSS {rss:.1f} MiB over "
                    f"watermark {self.max_memory_mb:.1f} MiB",
                    engine=engine,
                )

    def charge(
        self,
        conflicts: int = 0,
        decisions: int = 0,
        engine: Optional[str] = None,
        enforce: bool = True,
    ) -> None:
        """Account SAT work against this budget (and every ancestor).

        With ``enforce`` the matching abort is raised once a counter
        limit is crossed; pass ``enforce=False`` for the final charge
        after a solver call already produced a definite answer.
        """
        self.conflicts += conflicts
        self.decisions += decisions
        if self.parent is not None:
            self.parent.charge(
                conflicts, decisions, engine=engine, enforce=enforce
            )
        if not enforce:
            return
        if (
            self.max_conflicts is not None
            and self.conflicts >= self.max_conflicts
        ):
            raise ConflictsOut(
                f"budget {self.name!r}: {self.conflicts} conflicts "
                f">= limit {self.max_conflicts}",
                engine=engine,
            )
        if (
            self.max_decisions is not None
            and self.decisions >= self.max_decisions
        ):
            raise DecisionsOut(
                f"budget {self.name!r}: {self.decisions} decisions "
                f">= limit {self.max_decisions}",
                engine=engine,
            )

    def note_nodes(self, nodes: int, engine: Optional[str] = None) -> None:
        """Check a BDD allocation count against the node budget."""
        if self.max_bdd_nodes is not None and nodes > self.max_bdd_nodes:
            raise NodesOut(
                f"budget {self.name!r}: {nodes} BDD nodes over limit "
                f"{self.max_bdd_nodes}",
                engine=engine,
            )
        if self.parent is not None:
            self.parent.note_nodes(nodes, engine=engine)

    def remaining_conflicts(self) -> Optional[int]:
        own = (
            None
            if self.max_conflicts is None
            else max(0, self.max_conflicts - self.conflicts)
        )
        if self.parent is not None:
            up = self.parent.remaining_conflicts()
            if up is not None:
                own = up if own is None else min(own, up)
        return own

    def hook(self, engine: str) -> Callable[[], None]:
        """A zero-argument checkpoint closure tagged with an engine name
        (the shape ``BDD.checkpoint_hook`` and the kernel expect)."""
        return lambda: self.checkpoint(engine=engine)

    # ------------------------------------------------------------------
    # Sub-budgets
    # ------------------------------------------------------------------

    def sub(
        self,
        name: str,
        seconds: Optional[float] = None,
        conflicts: Optional[int] = None,
        nodes: Optional[int] = None,
    ) -> "Budget":
        """A child budget for one supervised step.

        The child's limits are intersected with whatever remains here,
        its charges propagate upward, and its deadline can never exceed
        the parent's -- so a retried step cannot overrun the run.
        """
        remaining = self.remaining_seconds()
        if seconds is None:
            seconds = remaining
        elif remaining is not None:
            seconds = min(seconds, remaining)
        return Budget(
            max_seconds=seconds,
            max_conflicts=conflicts,
            max_bdd_nodes=nodes,
            max_memory_mb=self.max_memory_mb,
            name=f"{self.name}/{name}",
            parent=self,
        )

    # ------------------------------------------------------------------
    # Reporting / serialization
    # ------------------------------------------------------------------

    def spent(self) -> Dict[str, float]:
        """Cumulative spend, prior (resumed) runs included."""
        return {
            "seconds": round(
                self.elapsed() + float(self.prior.get("seconds", 0.0)), 4
            ),
            "conflicts": self.conflicts
            + int(self.prior.get("conflicts", 0)),
            "decisions": self.decisions
            + int(self.prior.get("decisions", 0)),
        }

    def limits(self) -> Dict[str, Optional[float]]:
        return {
            "max_seconds": self.max_seconds,
            "max_conflicts": self.max_conflicts,
            "max_decisions": self.max_decisions,
            "max_bdd_nodes": self.max_bdd_nodes,
            "max_memory_mb": self.max_memory_mb,
        }

    def to_json(self) -> dict:
        return {"name": self.name, "limits": self.limits(),
                "spent": self.spent()}

    @classmethod
    def from_json(cls, payload: dict) -> "Budget":
        limits = payload.get("limits", {})
        return cls(
            max_seconds=limits.get("max_seconds"),
            max_conflicts=limits.get("max_conflicts"),
            max_decisions=limits.get("max_decisions"),
            max_bdd_nodes=limits.get("max_bdd_nodes"),
            max_memory_mb=limits.get("max_memory_mb"),
            name=payload.get("name", "run"),
            prior=payload.get("spent", {}),
        )

    def __repr__(self) -> str:
        remaining = self.remaining_seconds()
        left = "inf" if remaining is None else f"{remaining:.2f}s"
        return f"Budget({self.name!r}, remaining={left})"
