"""The portfolio supervisor: budgeted attempts, escalating retry,
engine fallback, and fault containment.

The supervisor is the *only* layer that catches
:class:`~repro.runtime.abort.EngineAbort` (plus ``MemoryError`` and
``RecursionError``, which it converts into the taxonomy).  Every RFN
step runs through :meth:`Supervisor.attempt`:

1. the step callable runs (through the chaos monkey when one is
   installed, so injected faults hit exactly here),
2. on an abort the step is retried -- the callable receives the attempt
   index so it can scale its own budgets (2x conflicts, 2x nodes, ...),
3. when retries are spent, an optional *fallback* engine runs (e.g. the
   hybrid trace engine falls back to BMC on the abstract model),
4. if everything failed the step returns a :class:`StepResult` whose
   ``abort`` names the failing engine and exhausted resource -- the
   caller downgrades to RESOURCE_OUT-with-partial-results instead of
   crashing.

Results are screened: a :class:`~repro.runtime.chaos.Garbage` sentinel
or a validator rejection counts as a fault, so a corrupted verdict can
never propagate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.obs import tracer as obs
from repro.runtime.abort import EngineAbort, InjectedFault, MemoryOut
from repro.runtime.budget import Budget, process_rss_mb
from repro.runtime.chaos import ChaosMonkey, Garbage

#: Exception classes the supervisor contains.  ``KeyboardInterrupt``
#: (BaseException) deliberately passes through: the CLI owns it.
CONTAINED = (EngineAbort, MemoryError, RecursionError)


@dataclass
class AbortInfo:
    """One contained engine failure, in JSON-able form."""

    engine: str
    resource: str
    detail: str
    injected: bool = False
    attempt: int = 0
    #: RSS watermark (MiB) snapshotted when a memory abort was contained,
    #: so post-mortems can tell an OOM near the limit from a stray
    #: MemoryError raised at 5% RSS.  None for non-memory aborts.
    rss_mb: Optional[float] = None

    @classmethod
    def from_exception(
        cls, engine: str, error: BaseException, attempt: int = 0
    ) -> "AbortInfo":
        if isinstance(error, EngineAbort):
            rss = None
            if error.resource == MemoryOut.resource and not error.injected:
                rss = process_rss_mb()
            return cls(
                engine=error.engine or engine,
                resource=error.resource,
                detail=error.detail,
                injected=error.injected,
                attempt=attempt,
                rss_mb=rss,
            )
        if isinstance(error, MemoryError):
            injected = "chaos" in str(error)
            return cls(
                engine=engine,
                resource=MemoryOut.resource,
                detail=str(error) or "MemoryError",
                injected=injected,
                attempt=attempt,
                rss_mb=None if injected else process_rss_mb(),
            )
        return cls(
            engine=engine,
            resource="recursion",
            detail=str(error) or type(error).__name__,
            attempt=attempt,
        )

    def describe(self) -> str:
        tag = " (injected)" if self.injected else ""
        return f"{self.engine}: {self.resource}{tag}: {self.detail}"

    def to_json(self) -> dict:
        payload = {
            "engine": self.engine,
            "resource": self.resource,
            "detail": self.detail,
            "injected": self.injected,
            "attempt": self.attempt,
        }
        if self.rss_mb is not None:
            payload["rss_mb"] = round(self.rss_mb, 1)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "AbortInfo":
        return cls(
            engine=payload.get("engine", "?"),
            resource=payload.get("resource", "?"),
            detail=payload.get("detail", ""),
            injected=bool(payload.get("injected", False)),
            attempt=int(payload.get("attempt", 0)),
            rss_mb=payload.get("rss_mb"),
        )


@dataclass
class StepResult:
    """Outcome of one supervised step."""

    engine: str
    ok: bool = False
    value: Any = None
    attempts: int = 0
    fell_back: bool = False
    abort: Optional[AbortInfo] = None
    aborts: List[AbortInfo] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Did this step need a retry or fallback to succeed?"""
        return self.ok and (self.fell_back or bool(self.aborts))


class Supervisor:
    """Runs engine steps under containment (see module docstring)."""

    def __init__(
        self,
        budget: Optional[Budget] = None,
        chaos: Optional[ChaosMonkey] = None,
        log: Optional[Callable[[str], None]] = None,
        max_retries: int = 1,
        retry_scale: float = 2.0,
    ) -> None:
        self.budget = budget
        self.chaos = chaos
        self.log = log
        self.max_retries = max_retries
        self.retry_scale = retry_scale
        self.current_engine: Optional[str] = None
        self.aborts: List[AbortInfo] = []

    def _note(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    @property
    def budget_exhausted(self) -> bool:
        """Is the *run-level* wall clock gone?  (Retries are pointless
        then; the caller should finish with RESOURCE_OUT.)"""
        return self.budget is not None and self.budget.expired()

    # ------------------------------------------------------------------

    def _call(
        self,
        engine: str,
        fn: Callable[[int], Any],
        attempt: int,
        validate: Optional[Callable[[Any], bool]],
    ) -> Any:
        self.current_engine = engine
        try:
            with obs.span(f"step.{engine}", attempt=attempt):
                if self.chaos is not None:
                    self.chaos.before(engine)
                value = fn(attempt)
                if self.chaos is not None:
                    value = self.chaos.mangle(engine, value)
                if isinstance(value, Garbage):
                    raise InjectedFault(
                        f"garbage verdict from {engine!r}", engine=engine
                    )
                if validate is not None and not validate(value):
                    raise EngineAbort(
                        f"result from {engine!r} failed validation",
                        engine=engine,
                        resource="invalid-result",
                    )
                return value
        finally:
            self.current_engine = None

    def _record(
        self, engine: str, error: BaseException, attempt: int
    ) -> AbortInfo:
        info = AbortInfo.from_exception(engine, error, attempt)
        self.aborts.append(info)
        obs.event(
            "supervisor.contained",
            engine=info.engine,
            resource=info.resource,
            detail=info.detail,
            injected=info.injected,
            attempt=info.attempt,
        )
        self._note(f"[supervisor] contained {info.describe()}")
        return info

    def attempt(
        self,
        engine: str,
        fn: Callable[[int], Any],
        *,
        retries: Optional[int] = None,
        validate: Optional[Callable[[Any], bool]] = None,
        fallback: Optional[Callable[[int], Any]] = None,
        fallback_name: Optional[str] = None,
    ) -> StepResult:
        """Run ``fn`` under containment with escalating retry and an
        optional fallback engine.  Never raises a contained exception.

        ``fn(attempt)`` receives the 0-based attempt index so it can
        scale its budgets; ``fallback(0)`` runs once after retries are
        spent.  ``validate(value)`` screens results (garbage verdicts
        are screened unconditionally).
        """
        retries = self.max_retries if retries is None else retries
        result = StepResult(engine=engine)
        for attempt in range(retries + 1):
            if attempt > 0 and self.budget_exhausted:
                break
            if attempt > 0:
                obs.event(
                    "supervisor.retry", engine=engine, attempt=attempt
                )
            result.attempts += 1
            try:
                value = self._call(engine, fn, attempt, validate)
            except CONTAINED as error:
                result.aborts.append(self._record(engine, error, attempt))
                continue
            result.ok = True
            result.value = value
            return result
        if fallback is not None and not self.budget_exhausted:
            name = fallback_name or f"{engine}-fallback"
            result.attempts += 1
            try:
                value = self._call(name, fallback, 0, validate)
            except CONTAINED as error:
                result.aborts.append(self._record(name, error, 0))
            else:
                result.ok = True
                result.value = value
                result.fell_back = True
                obs.event(
                    "supervisor.fallback", engine=engine, fallback=name
                )
                self._note(
                    f"[supervisor] {engine!r} degraded to {name!r}"
                )
                return result
        result.abort = result.aborts[-1] if result.aborts else AbortInfo(
            engine=engine, resource="unknown", detail="no attempt ran"
        )
        return result
