"""Checkpoint/resume for the CEGAR loop.

The RFN trajectory is deterministic given the circuit, the property,
the kept-register set, and the BDD variable order -- so a checkpoint
only needs those plus the iteration counter and the budget already
spent.  ``repro verify --resume ckpt.json`` reloads the file, rebuilds
the abstraction at the recorded refinement frontier, and continues the
loop from the next iteration instead of redoing completed refinements.

The file is plain JSON so operators can inspect a stuck run with
``jq``.  A version field and a circuit/property fingerprint guard
against resuming the wrong design.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.fsio import atomic_write_text

CHECKPOINT_VERSION = 1


@dataclass
class RfnCheckpoint:
    """Serializable CEGAR loop state (see module docstring)."""

    circuit_name: str = ""
    property_name: str = ""
    target: Dict[str, Any] = field(default_factory=dict)
    #: number of *completed* refinement iterations
    iteration: int = 0
    kept_registers: List[str] = field(default_factory=list)
    var_order: List[str] = field(default_factory=list)
    budget_spent: Dict[str, float] = field(default_factory=dict)
    iterations: List[Dict[str, Any]] = field(default_factory=list)
    status: str = "in_progress"
    version: int = CHECKPOINT_VERSION

    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "circuit_name": self.circuit_name,
            "property_name": self.property_name,
            "target": self.target,
            "iteration": self.iteration,
            "kept_registers": sorted(self.kept_registers),
            "var_order": list(self.var_order),
            "budget_spent": dict(self.budget_spent),
            "iterations": list(self.iterations),
            "status": self.status,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RfnCheckpoint":
        version = payload.get("version", 0)
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return cls(
            circuit_name=payload.get("circuit_name", ""),
            property_name=payload.get("property_name", ""),
            target=dict(payload.get("target", {})),
            iteration=int(payload.get("iteration", 0)),
            kept_registers=list(payload.get("kept_registers", [])),
            var_order=list(payload.get("var_order", [])),
            budget_spent=dict(payload.get("budget_spent", {})),
            iterations=list(payload.get("iterations", [])),
            status=payload.get("status", "in_progress"),
            version=version,
        )

    def save(self, path: str) -> str:
        """Crash-atomically write the checkpoint (write-temp + fsync +
        rename via :func:`repro.runtime.fsio.atomic_write_text`), so a
        ``kill -9`` mid-write can never leave a truncated JSON file --
        the previous checkpoint survives intact."""
        text = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        return atomic_write_text(path, text)

    @classmethod
    def load(cls, path: str) -> "RfnCheckpoint":
        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"checkpoint {path!r} is not a JSON object")
        return cls.from_json(payload)

    # ------------------------------------------------------------------

    def validate_against(self, circuit, prop) -> None:
        """Refuse to resume onto a different design or property."""
        circuit_name = getattr(circuit, "name", "") or ""
        if self.circuit_name and circuit_name and (
            self.circuit_name != circuit_name
        ):
            raise ValueError(
                f"checkpoint is for circuit {self.circuit_name!r}, "
                f"not {circuit_name!r}"
            )
        prop_name = getattr(prop, "name", "") or ""
        if self.property_name and prop_name and (
            self.property_name != prop_name
        ):
            raise ValueError(
                f"checkpoint is for property {self.property_name!r}, "
                f"not {prop_name!r}"
            )
        registers = set(circuit.registers)  # dict of name -> Register
        missing = sorted(set(self.kept_registers) - registers)
        if missing:
            raise ValueError(
                f"checkpoint keeps registers absent from the circuit: "
                f"{', '.join(missing)}"
            )

    def describe(self) -> str:
        return (
            f"checkpoint: {self.circuit_name or '?'} / "
            f"{self.property_name or '?'}, iteration {self.iteration}, "
            f"{len(self.kept_registers)} registers kept, "
            f"status {self.status}"
        )
