"""Crash-atomic filesystem primitives.

Every durable artifact in the repro -- CEGAR checkpoints, fuzz corpus
reproducers, service result files, journal segments -- is written
through :func:`atomic_write_text`: the bytes land in a temporary file
*in the destination directory*, are flushed and ``fsync``'d, and only
then ``os.replace``'d over the destination, followed by a directory
fsync so the rename itself is durable.  A ``kill -9`` (or power cut) at
any instant therefore leaves either the complete old file or the
complete new file -- never a truncated JSON artifact.

The helpers degrade gracefully on filesystems that reject directory
fsync (some network mounts): the rename atomicity still holds, only the
rename's durability window widens.
"""

from __future__ import annotations

import os
import tempfile


def fsync_dir(directory: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss.
    Best-effort: directories cannot be fsynced on every filesystem."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystem
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystem
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, durable: bool = True) -> str:
    """Write ``text`` to ``path`` crash-atomically (see module docstring).

    Returns ``path``.  With ``durable=False`` the data fsync is skipped
    (rename atomicity is kept; used for artifacts that are cheap to
    regenerate).
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix="." + os.path.basename(path) + ".", suffix=".tmp",
        dir=directory,
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(directory)
    return path
