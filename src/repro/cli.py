"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``      parse a netlist file and print design statistics
``verify``     run RFN (or the plain COI model checker) on a property
``coverage``   unreachable-coverage-state analysis (RFN or BFS method)
``simulate``   random simulation with a rendered waveform
``fuzz``       differential fuzzing of the verification engines
``batch``      verify many corpus netlists, sharded across processes
``serve``      crash-tolerant verification daemon (WAL queue, watchdog,
               per-engine circuit breakers)
``submit``     file-protocol client: enqueue one netlist on a serve queue
``status``     file-protocol client: show a serve queue's state
``engines``    list the registered verification engines (``--json``)
``trace``      validate/export an obs trace (Chrome JSON, folded stacks)
``report``     human-readable run report from an obs trace

Netlists use the text format of :mod:`repro.netlist.textio` (see
``examples/netlist_files.py``).  Exit codes come from one place --
:func:`repro.engine.verdict_to_exit` -- shared by ``verify``, ``batch``
and ``submit --wait``: 0 = verified, 1 = falsified, 2 = inconclusive,
3 = usage error, 4 = infrastructure failure (worker death / retries
exhausted -- never conflated with a property FAIL), 75 = RETRY_LATER
(admission control shed the job; back off and resubmit).  For ``fuzz``:
0 = all engines agreed and every certificate held, 1 = at least one
finding (reproducers are shrunk into the corpus).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.aig import aig_to_circuit, circuit_to_aig, parse_aiger, to_aiger
from repro.aig.convert import strash_circuit
from repro.core import RfnConfig, UnreachabilityProperty, rfn_verify
from repro.engine import (
    Limits,
    Verdict,
    batch_exit,
    registry,
    result_exit,
    verdict_to_exit,
)
from repro.core.coverage import (
    CoverageAnalyzer,
    CoverageConfig,
    bfs_coverage_analysis,
)
from repro.mc import model_check_coi
from repro.mc.bmc import BmcOutcome, bmc
from repro.mc.reach import ReachLimits
from repro.netlist import (
    NetlistError,
    NetlistParseError,
    circuit_from_text,
    circuit_to_text,
    parse_verilog,
)
from repro.netlist.ops import coi_stats
from repro.obs import tracer as obs
from repro.runtime import Budget, ChaosMonkey, RfnCheckpoint
from repro.sim import RandomSimulator
from repro.trace import Trace
from repro.vcd import trace_to_vcd

#: live state of an in-flight ``verify`` run, so the KeyboardInterrupt
#: handler in :func:`main` can emit a partial report (iterations done,
#: budget spent, last checkpoint) before exiting with code 130
_PARTIAL: Dict[str, object] = {}


def _load(path: str):
    """Read a design file; the extension picks the frontend
    (.v -> Verilog subset, .aag -> AIGER, anything else -> netlist text).

    Malformed, truncated or binary input surfaces as a
    :class:`~repro.netlist.NetlistParseError` with file context (the
    CLI prints it cleanly and exits 2), never a raw traceback."""
    try:
        with open(path) as handle:
            text = handle.read()
    except UnicodeDecodeError as error:
        raise NetlistParseError(
            f"not a text netlist (binary or non-UTF-8 input): {error}",
            path=path,
        ) from error
    try:
        if path.endswith(".v"):
            return parse_verilog(text)
        if path.endswith(".aag"):
            return aig_to_circuit(parse_aiger(text))
        return circuit_from_text(text, path=path)
    except NetlistParseError:
        raise
    except (NetlistError, ValueError, IndexError, KeyError) as error:
        raise NetlistParseError(
            str(error) or type(error).__name__, path=path
        ) from error


def _parse_target(text: str) -> Dict[str, int]:
    cube: Dict[str, int] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"bad target literal {item!r}; use sig=0|1")
        name, _, value = item.partition("=")
        if value not in ("0", "1"):
            raise ValueError(f"bad target value in {item!r}")
        cube[name.strip()] = int(value)
    if not cube:
        raise ValueError("empty target cube")
    return cube


# ----------------------------------------------------------------------


def cmd_stats(args) -> int:
    circuit = _load(args.netlist)
    stats = circuit.stats()
    print(f"circuit {circuit.name}:")
    print(f"  inputs:    {stats['inputs']}")
    print(f"  gates:     {stats['gates']}")
    print(f"  registers: {stats['registers']}")
    if circuit.outputs:
        print(f"  outputs:   {', '.join(circuit.outputs)}")
        regs, gates = coi_stats(circuit, circuit.outputs)
        print(f"  output COI: {regs} registers, {gates} gates")
    if args.perf:
        _print_perf_profile(circuit, lanes=args.perf_lanes,
                            cycles=args.perf_cycles)
    return 0


def _print_perf_profile(circuit, lanes: int, cycles: int) -> None:
    """Measure interpreted vs bit-parallel throughput on the loaded
    design and dump the kernel's perf counters."""
    import time as _time

    from repro.kernel import PERF, BitParallelSimulator, pack_bits
    from repro.sim import Simulator

    rng = __import__("random").Random(0)
    PERF.reset()

    sim = Simulator(circuit)
    state = sim.initial_state(default=0)
    start = _time.perf_counter()
    for _ in range(cycles):
        inputs = {n: rng.randint(0, 1) for n in circuit.inputs}
        _, state = sim.step(state, inputs)
    interp_s = _time.perf_counter() - start
    interp_pps = cycles / interp_s if interp_s > 0 else float("inf")

    bitsim = BitParallelSimulator(circuit)
    packed = bitsim.initial_state(lanes, default=0)
    start = _time.perf_counter()
    for _ in range(cycles):
        inputs = {
            n: pack_bits(rng.getrandbits(lanes), lanes)
            for n in circuit.inputs
        }
        _, packed = bitsim.step(packed, inputs, lanes)
    kernel_s = _time.perf_counter() - start
    kernel_pps = lanes * cycles / kernel_s if kernel_s > 0 else float("inf")

    print(f"simulation throughput ({cycles} cycles):")
    print(f"  interpreted:  {interp_pps:,.0f} patterns/s")
    print(f"  bit-parallel: {kernel_pps:,.0f} patterns/s ({lanes} lanes, "
          f"{kernel_pps / interp_pps:.1f}x)" if interp_pps else "")
    print(PERF.format())


def cmd_verify(args) -> int:
    circuit = _load(args.netlist)
    if args.engine != "rfn":
        for flag, value in (
            ("--resume", args.resume),
            ("--checkpoint", args.checkpoint),
        ):
            if value:
                raise ValueError(
                    f"{flag} only applies to the rfn engine"
                )
    if args.engine not in ("rfn", "portfolio"):
        for flag, value in (
            ("--chaos", args.chaos),
            ("--jobs", args.jobs),
        ):
            if value:
                raise ValueError(
                    f"{flag} only applies to the rfn and portfolio engines"
                )
    if args.strategies and args.engine != "portfolio":
        raise ValueError("--strategies only applies to the portfolio engine")
    resume_ckpt = None
    if args.resume:
        resume_ckpt = RfnCheckpoint.load(args.resume)
    if args.watchdog:
        target = {args.watchdog: 1}
    elif args.target:
        target = _parse_target(args.target)
    elif resume_ckpt is not None:
        target = dict(resume_ckpt.target)
        if resume_ckpt.property_name:
            args.name = resume_ckpt.property_name
    else:
        raise ValueError(
            "one of --watchdog/--target is required "
            "(unless resuming from a checkpoint)"
        )
    prop = UnreachabilityProperty(args.name, target)
    log = print if args.verbose else None

    if args.engine == "bmc":
        result = bmc(
            circuit,
            prop,
            max_depth=args.max_depth,
            max_seconds=args.timeout,
            unique_states=args.unique_states,
            incremental=not args.no_incremental,
        )
        extra = (
            f" (k-induction at depth {result.induction_depth})"
            if result.induction_depth is not None
            else ""
        )
        print(f"BMC: {result.outcome.value} at depth {result.depth}"
              f"{extra} in {result.seconds:.2f}s")
        trace = result.trace
        status_code = verdict_to_exit(
            {
                BmcOutcome.FALSE: Verdict.FALSIFIED,
                BmcOutcome.TRUE: Verdict.VERIFIED,
            }.get(result.outcome, Verdict.UNKNOWN)
        )
    elif args.engine == "smc":
        max_seconds = args.max_seconds
        if args.timeout is not None:
            max_seconds = (
                args.timeout
                if max_seconds is None
                else min(max_seconds, args.timeout)
            )
        result = model_check_coi(
            circuit,
            prop,
            limits=ReachLimits(
                max_seconds=max_seconds, max_nodes=args.max_nodes
            ),
        )
        print(f"plain SMC+COI: {result.outcome.value} "
              f"({result.coi_registers} COI registers, "
              f"{result.seconds:.2f}s)")
        trace = result.trace
        status_code = verdict_to_exit(
            {
                "false": Verdict.FALSIFIED,
                "true": Verdict.VERIFIED,
            }.get(result.outcome.value, Verdict.UNKNOWN)
        )
    elif args.engine == "portfolio":
        from repro.parallel import STRATEGY_ORDER, race

        budget = (
            Budget(max_seconds=args.timeout)
            if args.timeout is not None
            else None
        )
        chaos = ChaosMonkey.parse(args.chaos) if args.chaos else None
        strategies = (
            tuple(s.strip() for s in args.strategies.split(",") if s.strip())
            if args.strategies
            else STRATEGY_ORDER
        )
        outcome = race(
            circuit,
            prop,
            strategies=strategies,
            jobs=max(1, args.jobs),
            budget=budget,
            chaos=chaos,
            log=log,
        )
        print(f"portfolio: {outcome.verdict} "
              f"(winner: {outcome.winner or 'none'}, jobs: {outcome.jobs}) "
              f"in {outcome.seconds:.2f}s")
        for envelope in outcome.envelopes:
            print(f"  {envelope.strategy}: {envelope.verdict} "
                  f"({envelope.detail}) in {envelope.seconds:.2f}s")
        if outcome.disagreement:
            print(f"  DISAGREEMENT: {outcome.disagreement}")
        trace = outcome.trace
        status_code = verdict_to_exit(outcome.verdict)
    elif args.engine in registry and args.engine != "rfn":
        budget = (
            Budget(max_seconds=args.timeout)
            if args.timeout is not None
            else None
        )
        engine = registry.get(args.engine)
        result = engine.run(
            circuit,
            prop,
            Limits(
                max_seconds=args.max_seconds,
                max_depth=args.max_depth,
                budget=budget,
            ),
        )
        witness = f" [{result.witness}]" if result.witness else ""
        print(f"{engine.name}: {result.verdict} ({result.detail}) "
              f"in {result.seconds:.2f}s{witness}")
        trace = result.trace
        status_code = verdict_to_exit(result.verdict)
    else:
        budget = (
            Budget(max_seconds=args.timeout)
            if args.timeout is not None
            else None
        )
        chaos = ChaosMonkey.parse(args.chaos) if args.chaos else None
        checkpoint_path = args.checkpoint or args.resume
        config = RfnConfig(
            max_seconds=args.max_seconds,
            max_iterations=args.max_iterations,
            log=log,
            budget=budget,
            chaos=chaos,
            checkpoint_path=checkpoint_path,
            incremental=not args.no_incremental,
            parallel=args.jobs,
        )
        _PARTIAL.update(
            budget=budget,
            checkpoint_path=checkpoint_path,
            start=time.monotonic(),
        )
        rfn_result = rfn_verify(
            circuit,
            prop,
            config,
            resume=resume_ckpt,
            observer=lambda rfn: _PARTIAL.__setitem__("rfn", rfn),
        )
        print(f"RFN: {rfn_result.status.value} in "
              f"{rfn_result.seconds:.2f}s, "
              f"{len(rfn_result.iterations)} iterations, abstract model "
              f"{rfn_result.abstract_model_registers}/"
              f"{circuit.num_registers} registers")
        if rfn_result.resumed_iterations:
            print(f"resumed from {args.resume}: "
                  f"{rfn_result.resumed_iterations} prior iteration(s)")
        fallbacks = sorted({
            name
            for record in rfn_result.iterations
            for name in record.fallbacks.split(",")
            if name
        })
        if fallbacks:
            print(f"fallback engines used: {', '.join(fallbacks)}")
        if rfn_result.failure is not None:
            print(f"resource out: {rfn_result.failure.describe()}")
        if rfn_result.checkpoint_path:
            print(f"checkpoint written to {rfn_result.checkpoint_path}")
        trace = rfn_result.trace
        status_code = verdict_to_exit(rfn_result.status)

    if trace is not None:
        if args.vcd:
            trace_to_vcd(trace, args.vcd)
            print(f"error trace written to {args.vcd}")
        else:
            print(trace.format())
    return status_code


def cmd_coverage(args) -> int:
    circuit = _load(args.netlist)
    signals = [s.strip() for s in args.signals.split(",") if s.strip()]
    if not signals:
        print("no coverage signals given", file=sys.stderr)
        return 3
    total = 1 << len(signals)
    if args.method == "bfs":
        result = bfs_coverage_analysis(circuit, signals, k=args.bfs_k)
        print(f"BFS (k={args.bfs_k}): {result.num_unreachable}/{total} "
              f"coverage states unreachable "
              f"({result.model_registers} model registers, "
              f"{result.seconds:.2f}s)")
    else:
        config = CoverageConfig(
            max_seconds=args.max_seconds,
            log=print if args.verbose else None,
        )
        result = CoverageAnalyzer(circuit, signals, config).run()
        print(f"RFN: {result.num_unreachable}/{total} unreachable, "
              f"{result.num_reachable_marked} marked reachable, "
              f"{result.num_undetermined} undetermined "
              f"({result.iterations} iterations, "
              f"{result.model_registers} model registers, "
              f"{result.seconds:.2f}s)")
    if len(signals) <= args.list_limit_bits:
        states = sorted(result.unreachable_states())
        rendered = ["".join(str(b) for b in s) for s in states]
        print("unreachable states:", ", ".join(rendered) or "(none)")
    return 0


def cmd_convert(args) -> int:
    circuit = _load(args.input)
    if args.strash:
        before = circuit.num_gates
        circuit = strash_circuit(circuit)
        print(f"strash: {before} -> {circuit.num_gates} gates")
    if args.output.endswith(".aag"):
        text = to_aiger(circuit_to_aig(circuit))
    else:
        text = circuit_to_text(circuit)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} "
          f"({circuit.num_gates} gates, {circuit.num_registers} registers)")
    return 0


def cmd_simulate(args) -> int:
    circuit = _load(args.netlist)
    rs = RandomSimulator(circuit, seed=args.seed)
    frames = rs.random_run(args.cycles)
    signals = args.signals.split(",") if args.signals else (
        circuit.outputs or list(circuit.registers)[:8]
    )
    trace = Trace(
        states=[
            {s: f[s] for s in signals if s in f} for f in frames
        ],
        inputs=[{} for _ in frames],
        circuit_name=circuit.name,
    )
    print(trace.format(signals=[s for s in signals if s in frames[0]]))
    return 0


def cmd_fuzz(args) -> int:
    from repro.fuzz import GenConfig, OracleConfig, run_campaign

    gen_config = GenConfig(
        max_registers=args.max_registers, max_gates=args.max_gates
    )
    result = run_campaign(
        seed=args.seed,
        iters=args.iters,
        budget_seconds=args.budget,
        instance_seconds=args.instance_budget,
        jobs=args.jobs,
        gen_config=gen_config,
        oracle_config=OracleConfig(),
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        log=print if args.verbose else None,
    )
    payload = result.to_json()
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.report}")
    verdicts = ", ".join(
        f"{name}={count}"
        for name, count in sorted(result.verdict_counts.items())
    ) or "none"
    print(
        f"fuzz: {result.iterations_run}/{args.iters} iterations "
        f"(seed {args.seed}) in {result.seconds:.1f}s; "
        f"engine verdicts: {verdicts}"
    )
    if result.budget_exhausted:
        print(f"budget of {args.budget:.0f}s exhausted early")
    if result.resource_out_count:
        print(f"{result.resource_out_count} instance(s) hit the "
              f"per-instance budget (recorded, not findings)")
    if result.ok:
        print("no engine disagreements, no failed certificates")
        return 0
    print(f"{len(result.findings)} FINDING(S):")
    for finding in result.findings:
        report = finding.report_json()
        reasons = (
            report["disagreements"]
            + report["failed_certificates"]
            + report["errors"]
        )
        print(f"  seed {finding.seed}: {'; '.join(reasons)}")
        if finding.reproducer_path:
            print(f"    reproducer: {finding.reproducer_path}")
    return 1


def cmd_trace(args) -> int:
    from repro.obs import (
        load_records,
        to_chrome_json,
        to_folded,
        validate_records,
    )

    records = load_records(args.tracefile)
    problems = validate_records(records)
    if args.validate or not (args.chrome or args.flame):
        if problems:
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            print(f"{args.tracefile}: {len(problems)} schema problem(s)",
                  file=sys.stderr)
            return 1
        spans = sum(1 for r in records if r.get("type") == "span")
        events = sum(1 for r in records if r.get("type") == "event")
        print(f"{args.tracefile}: valid "
              f"({spans} spans, {events} events)")
        if not (args.chrome or args.flame):
            return 0

    if args.chrome:
        text = to_chrome_json(records)
        default = args.tracefile + ".chrome.json"
    else:
        text = "\n".join(to_folded(records))
        if text:
            text += "\n"
        default = args.tracefile + ".folded"
    out = args.output or default
    if out == "-":
        sys.stdout.write(text)
    else:
        with open(out, "w") as handle:
            handle.write(text)
        kind = "chrome trace" if args.chrome else "folded stacks"
        print(f"{kind} written to {out}")
    return 0


def cmd_report(args) -> int:
    from repro.obs import load_records, render_report

    records = load_records(args.tracefile)
    print(render_report(records), end="")
    return 0


def _batch_serve(args, items, strategies) -> List[dict]:
    """Run the batch through an in-process :class:`repro.serve.Daemon`
    (durable queue, watchdog, breakers) instead of bare shards: worker
    death and hangs are retried with backoff instead of surfacing as
    one-shot errors."""
    import tempfile

    from repro.fuzz.shrink import instance_to_text
    from repro.serve import (
        Daemon,
        ServeConfig,
        make_job,
        read_result,
        submit_job,
    )

    queue_dir = args.queue_dir or tempfile.mkdtemp(prefix="repro-batch-")
    job_ids = []
    for path, instance in items:
        job = make_job(
            instance_to_text(instance),
            name=os.path.basename(path),
            strategies=list(strategies),
            timeout=args.timeout,
        )
        submit_job(queue_dir, job)
        job_ids.append(job.id)
    config = ServeConfig(
        queue_dir=queue_dir,
        workers=max(1, args.jobs),
        max_queue=max(len(items), 64),
        default_timeout=args.timeout,
        until_idle=True,
        log=print if args.verbose else None,
    )
    Daemon(config).run()
    records = []
    for (path, instance), job_id in zip(items, job_ids):
        result = read_result(queue_dir, job_id) or {
            "verdict": "error",
            "detail": "no result produced",
            "infrastructure": True,
        }
        record = {
            "path": path,
            "name": instance.name,
            "verdict": result.get("verdict") or "error",
            "winner": result.get("winner"),
            "seconds": result.get("seconds"),
            "detail": result.get("detail", ""),
            "attempts": result.get("attempt"),
            "infrastructure": bool(result.get("infrastructure")),
            "job": job_id,
        }
        records.append(record)
    return records


def _batch_shards(args, items, strategies) -> List[dict]:
    from repro.parallel import race
    from repro.parallel.shard import SKIPPED, ShardError, shard_map

    log = print if args.verbose else None

    def one_instance(item):
        path, instance = item
        budget = (
            Budget(
                max_seconds=args.timeout,
                name=f"batch/{os.path.basename(path)}",
            )
            if args.timeout is not None
            else None
        )
        # Each shard runs the *sequential* race: the batch parallelism
        # is across instances, not within one.
        outcome = race(
            instance.circuit,
            instance.prop,
            strategies=strategies,
            jobs=1,
            budget=budget,
        )
        record = outcome.to_json()
        record["path"] = path
        record["name"] = instance.name
        # A strategy ERROR envelope is an engine/worker failure, not a
        # statement about the property.
        envelopes = record.get("envelopes", [])
        record["infrastructure"] = record["verdict"] == "error" or (
            bool(envelopes)
            and all(e.get("verdict") == "error" for e in envelopes)
        )
        return record

    deadline = (
        None if args.budget is None else time.monotonic() + args.budget
    )
    outcomes = shard_map(
        one_instance, items, jobs=args.jobs, deadline=deadline, log=log
    )

    records = []
    for (path, instance), outcome in zip(items, outcomes):
        if outcome is SKIPPED:
            record = {
                "path": path,
                "name": instance.name,
                "verdict": "skipped",
                "winner": None,
                "seconds": None,
                "infrastructure": False,
            }
        elif isinstance(outcome, ShardError):
            # The shard process itself died: by definition not a
            # property verdict.
            record = {
                "path": path,
                "name": instance.name,
                "verdict": "error",
                "winner": None,
                "seconds": None,
                "detail": str(outcome),
                "infrastructure": True,
            }
        else:
            record = outcome
        records.append(record)
    return records


def cmd_batch(args) -> int:
    from repro.fuzz.shrink import load_corpus, load_instance
    from repro.parallel import STRATEGY_ORDER

    items = []
    for path in args.paths:
        if os.path.isdir(path):
            items.extend(load_corpus(path))
        else:
            items.append((path, load_instance(path)))
    if not items:
        raise ValueError("no corpus instances found in the given paths")
    strategies = (
        tuple(s.strip() for s in args.strategies.split(",") if s.strip())
        if args.strategies
        else STRATEGY_ORDER
    )

    if args.serve:
        records = _batch_serve(args, items, strategies)
    else:
        records = _batch_shards(args, items, strategies)

    counts: Dict[str, int] = {}
    infra = []
    for record in records:
        counts[record["verdict"]] = counts.get(record["verdict"], 0) + 1
        if record.get("infrastructure"):
            infra.append(
                {
                    "path": record["path"],
                    "detail": record.get("detail", ""),
                    "attempts": record.get("attempts"),
                }
            )
        winner = record.get("winner") or "-"
        seconds = record.get("seconds")
        timing = "     -" if seconds is None else f"{seconds:5.2f}s"
        flag = " [infra]" if record.get("infrastructure") else ""
        print(f"  {record['verdict']:<10} {winner:<10} {timing}  "
              f"{record['path']}{flag}")

    summary = ", ".join(
        f"{name}={count}" for name, count in sorted(counts.items())
    )
    print(f"batch: {len(records)} instance(s); {summary}")
    if infra:
        print(f"{len(infra)} infrastructure failure(s) "
              f"(worker death / retries exhausted), not property verdicts")
    if args.report:
        payload = {
            "instances": records,
            "verdict_counts": counts,
            "infrastructure_failures": infra,
            "jobs": args.jobs,
            "serve": bool(args.serve),
            "strategies": list(strategies),
        }
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.report}")
    # Exit-code ladder: a genuine property FAIL dominates; otherwise
    # infrastructure failure is its own code (4) so CI can tell "the
    # design is buggy" from "the farm is buggy"; otherwise inconclusive
    # verdicts (unknown/skipped) exit 2.
    return batch_exit(counts, infrastructure=len(infra))


def cmd_serve(args) -> int:
    from repro.parallel import STRATEGY_ORDER
    from repro.serve import Daemon, ServeConfig

    strategies = (
        tuple(s.strip() for s in args.strategies.split(",") if s.strip())
        if args.strategies
        else STRATEGY_ORDER
    )
    config = ServeConfig(
        queue_dir=args.queue_dir,
        workers=max(1, args.workers),
        max_queue=args.max_queue,
        default_timeout=args.timeout,
        default_strategies=strategies,
        hang_seconds=args.hang_seconds,
        heartbeat_timeout=args.heartbeat_timeout,
        rss_limit_mb=args.rss_limit_mb,
        poll_seconds=args.poll,
        drain_grace=args.drain_grace,
        until_idle=args.until_idle,
        log=print if args.verbose else None,
    )
    return Daemon(config).run()


def cmd_submit(args) -> int:
    from repro.serve import RETRY_LATER, make_job, submit_job, wait_for

    with open(args.netlist) as handle:
        netlist_text = handle.read()
    target = _parse_target(args.target) if args.target else None
    if args.watchdog:
        target = {args.watchdog: 1}
    strategies = (
        [s.strip() for s in args.strategies.split(",") if s.strip()]
        if args.strategies
        else None
    )
    job = make_job(
        netlist_text,
        name=os.path.basename(args.netlist),
        target=target,
        prop_name=args.name,
        strategies=strategies,
        timeout=args.timeout,
        chaos=args.chaos,
    )
    submit_job(args.queue_dir, job)
    print(f"submitted {job.id} ({job.name})")
    if not args.wait:
        return 0
    results = wait_for(
        args.queue_dir, [job.id], timeout=args.wait_timeout
    )
    result = results[job.id]
    if result is None:
        print("error: timed out waiting for a result", file=sys.stderr)
    elif result.get("reply") == RETRY_LATER:
        print(f"{job.id}: {RETRY_LATER} ({result.get('detail', '')})",
              file=sys.stderr)
    else:
        verdict = result.get("verdict")
        infra = " [infrastructure]" if result.get("infrastructure") else ""
        print(f"{job.id}: {verdict}{infra} ({result.get('detail', '')})")
    return result_exit(result)


def cmd_engines(args) -> int:
    rows = registry.describe()
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    for row in rows:
        caps = ", ".join(row["capabilities"])
        print(f"{row['name']:<12} {row['description']}")
        print(f"{'':<12} capabilities: {caps}")
    return 0


def cmd_status(args) -> int:
    from repro.serve import queue_status, render_status

    status = queue_status(args.queue_dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(render_status(status), end="")
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RFN: formal property verification by abstraction "
        "refinement (DAC 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print netlist statistics")
    p_stats.add_argument("netlist")
    p_stats.add_argument(
        "--perf", action="store_true",
        help="measure interpreted vs bit-parallel simulation throughput "
        "on this design and print the kernel perf counters",
    )
    p_stats.add_argument("--perf-lanes", type=int, default=256)
    p_stats.add_argument("--perf-cycles", type=int, default=64)
    p_stats.set_defaults(func=cmd_stats)

    p_verify = sub.add_parser("verify", help="verify an unreachability property")
    p_verify.add_argument("netlist")
    group = p_verify.add_mutually_exclusive_group()
    group.add_argument("--watchdog", help="watchdog register (target: =1)")
    group.add_argument("--target", help="target cube, e.g. 'bad=1,mode=0'")
    p_verify.add_argument("--name", default="property")
    p_verify.add_argument(
        "--engine",
        choices=(
            "rfn", "smc", "bmc", "portfolio",
            "bdd", "kinduction", "kernel", "atpg",
        ),
        default="rfn",
        help="rfn/smc/bmc/portfolio keep their bespoke reporting; any "
        "other registered engine (see 'repro engines') runs through "
        "the canonical repro.engine entrypoint",
    )
    p_verify.add_argument(
        "--jobs", type=int, default=0,
        help="race engine strategies across this many worker processes "
        "(rfn: races the abstract-model check when >= 2; portfolio: "
        "races the whole obligation); 0/1 = sequential",
    )
    p_verify.add_argument(
        "--strategies",
        help="portfolio: comma-separated strategy subset, e.g. "
        "'bdd,kinduction' (default: bdd,rfn,kinduction,bmc)",
    )
    p_verify.add_argument("--max-seconds", type=float, default=None)
    p_verify.add_argument("--max-nodes", type=int, default=2_000_000)
    p_verify.add_argument(
        "--timeout", type=float, default=None,
        help="run budget in seconds, enforced cooperatively inside "
        "every engine's hot loop (rfn: structured RESOURCE_OUT)",
    )
    p_verify.add_argument("--max-iterations", type=int, default=64,
                          help="rfn: CEGAR iteration cap")
    p_verify.add_argument(
        "--checkpoint", metavar="PATH",
        help="rfn: write the CEGAR state here after each iteration",
    )
    p_verify.add_argument(
        "--resume", metavar="PATH",
        help="rfn: resume from a checkpoint written by --checkpoint "
        "(the target cube defaults to the checkpoint's)",
    )
    p_verify.add_argument(
        "--chaos", metavar="SPEC",
        help="rfn: deterministic fault injection, e.g. "
        "'reach=timeout@0,hybrid=garbage' (testing aid)",
    )
    p_verify.add_argument("--max-depth", type=int, default=32,
                          help="BMC unrolling bound")
    p_verify.add_argument(
        "--no-incremental", action="store_true",
        help="disable the pooled incremental SAT sessions (fresh solver "
             "per query; escape hatch for debugging solver-state issues)",
    )
    p_verify.add_argument("--unique-states", action="store_true",
                          help="BMC: simple-path induction constraints")
    p_verify.add_argument("--vcd", help="write the error trace as VCD")
    p_verify.add_argument(
        "--trace", metavar="PATH",
        help="write an obs span/event trace (schema-versioned JSONL) "
        "here; inspect it with 'repro trace' / 'repro report'",
    )
    p_verify.add_argument("--verbose", action="store_true")
    p_verify.set_defaults(func=cmd_verify)

    p_convert = sub.add_parser(
        "convert",
        help="convert between netlist text, Verilog subset and AIGER",
    )
    p_convert.add_argument("input")
    p_convert.add_argument("output", help="*.net or *.aag")
    p_convert.add_argument(
        "--strash", action="store_true",
        help="structurally optimize through an AIG round trip",
    )
    p_convert.set_defaults(func=cmd_convert)

    p_cov = sub.add_parser("coverage", help="unreachable-coverage-state analysis")
    p_cov.add_argument("netlist")
    p_cov.add_argument("--signals", required=True,
                       help="comma-separated register outputs")
    p_cov.add_argument("--method", choices=("rfn", "bfs"), default="rfn")
    p_cov.add_argument("--bfs-k", type=int, default=60)
    p_cov.add_argument("--max-seconds", type=float, default=None)
    p_cov.add_argument("--list-limit-bits", type=int, default=8)
    p_cov.add_argument("--verbose", action="store_true")
    p_cov.set_defaults(func=cmd_coverage)

    p_sim = sub.add_parser("simulate", help="random simulation waveform")
    p_sim.add_argument("netlist")
    p_sim.add_argument("--cycles", type=int, default=16)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--signals", help="comma-separated signals to show")
    p_sim.set_defaults(func=cmd_simulate)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random designs through every engine",
    )
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--iters", type=int, default=50,
                        help="number of generated instances")
    p_fuzz.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds")
    p_fuzz.add_argument("--instance-budget", type=float, default=None,
                        help="per-instance wall-clock budget in seconds; "
                        "engines that exceed it are recorded as "
                        "resource-out, not findings")
    p_fuzz.add_argument("--corpus",
                        help="directory for shrunk reproducers "
                        "(e.g. tests/corpus)")
    p_fuzz.add_argument("--report", help="write a JSON run report here")
    p_fuzz.add_argument("--max-registers", type=int, default=4,
                        help="plain-register ceiling per instance")
    p_fuzz.add_argument("--max-gates", type=int, default=16)
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of findings")
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="shard instances across this many worker "
                        "processes (results merge in seed order, so the "
                        "report matches a sequential run)")
    p_fuzz.add_argument(
        "--trace", metavar="PATH",
        help="write an obs span/event trace (schema-versioned JSONL) "
        "here; inspect it with 'repro trace' / 'repro report'",
    )
    p_fuzz.add_argument("--verbose", action="store_true")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_batch = sub.add_parser(
        "batch",
        help="verify a batch of corpus netlists, sharded across processes",
    )
    p_batch.add_argument(
        "paths", nargs="+",
        help="*.net files with a '# !property' directive, or directories "
        "of them (e.g. tests/corpus)",
    )
    p_batch.add_argument("--jobs", type=int, default=1,
                         help="worker processes (one instance each)")
    p_batch.add_argument(
        "--strategies",
        help="comma-separated portfolio strategies per instance "
        "(default: bdd,rfn,kinduction,bmc)",
    )
    p_batch.add_argument("--timeout", type=float, default=None,
                         help="per-instance budget in seconds")
    p_batch.add_argument("--budget", type=float, default=None,
                         help="whole-batch wall-clock budget; instances "
                         "past it are reported as skipped")
    p_batch.add_argument("--report", help="write a JSON batch report here")
    p_batch.add_argument(
        "--serve", action="store_true",
        help="run on the crash-tolerant service layer (durable queue, "
        "watchdog, per-engine breakers, bounded retries) instead of "
        "bare one-shot shards",
    )
    p_batch.add_argument(
        "--queue-dir",
        help="with --serve: queue directory (default: a fresh temp dir)",
    )
    p_batch.add_argument("--verbose", action="store_true")
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the supervised verification daemon over a durable "
        "job queue (crash-tolerant: WAL + watchdog + breakers)",
    )
    p_serve.add_argument("--queue-dir", required=True,
                         help="queue directory (created if missing)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker processes (one job each)")
    p_serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission bound: submissions past this many active jobs "
        "are shed with a RETRY_LATER reply",
    )
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="default per-job budget in seconds")
    p_serve.add_argument(
        "--strategies",
        help="default engine strategies per job, comma-separated "
        "(default: bdd,rfn,kinduction,bmc)",
    )
    p_serve.add_argument(
        "--hang-seconds", type=float, default=300.0,
        help="watchdog: preempt a worker whose attempt runs longer "
        "than this lease",
    )
    p_serve.add_argument(
        "--heartbeat-timeout", type=float, default=15.0,
        help="watchdog: preempt a worker whose heartbeat goes stale",
    )
    p_serve.add_argument(
        "--rss-limit-mb", type=float, default=None,
        help="watchdog: preempt a worker whose RSS exceeds this "
        "(before the kernel OOM killer picks a victim at random)",
    )
    p_serve.add_argument(
        "--until-idle", action="store_true",
        help="exit 0 once every known job is terminal and the inbox "
        "is empty (batch/CI mode; default: serve until SIGTERM)",
    )
    p_serve.add_argument("--drain-grace", type=float, default=10.0,
                         help="SIGTERM: seconds in-flight jobs get to "
                         "finish before preempt-and-requeue")
    p_serve.add_argument("--poll", type=float, default=0.05,
                         help="main-loop poll interval in seconds")
    p_serve.add_argument(
        "--trace", metavar="PATH",
        help="write an obs span/event trace (schema-versioned JSONL) "
        "here; inspect it with 'repro trace' / 'repro report'",
    )
    p_serve.add_argument("--verbose", action="store_true")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit one netlist to a running (or future) repro serve "
        "queue via the file protocol",
    )
    p_submit.add_argument("queue_dir", help="the daemon's --queue-dir")
    p_submit.add_argument("netlist",
                          help="netlist text file; a '# !property' "
                          "directive supplies the property unless "
                          "--target/--watchdog is given")
    group = p_submit.add_mutually_exclusive_group()
    group.add_argument("--watchdog", help="watchdog register (target: =1)")
    group.add_argument("--target", help="target cube, e.g. 'bad=1,mode=0'")
    p_submit.add_argument("--name", default="property")
    p_submit.add_argument("--strategies",
                          help="comma-separated strategy subset")
    p_submit.add_argument("--timeout", type=float, default=None,
                          help="per-job budget in seconds")
    p_submit.add_argument(
        "--chaos", metavar="SPEC",
        help="deterministic fault injection inside this job's workers "
        "(testing aid), e.g. 'rfn=crash'",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal verdict; exit "
        "0=verified 1=falsified 2=unknown 4=infrastructure "
        "75=RETRY_LATER (queue full)",
    )
    p_submit.add_argument("--wait-timeout", type=float, default=None)
    p_submit.set_defaults(func=cmd_submit)

    p_engines = sub.add_parser(
        "engines",
        help="list the registered verification engines and their "
        "capability tags",
    )
    p_engines.add_argument("--json", action="store_true")
    p_engines.set_defaults(func=cmd_engines)

    p_status = sub.add_parser(
        "status",
        help="show a repro serve queue: journal replay + inbox backlog "
        "(read-only; safe next to a live daemon)",
    )
    p_status.add_argument("queue_dir", help="the daemon's --queue-dir")
    p_status.add_argument("--json", action="store_true")
    p_status.set_defaults(func=cmd_status)

    p_trace = sub.add_parser(
        "trace",
        help="validate or export an obs trace written with --trace",
    )
    p_trace.add_argument("tracefile", help="JSONL trace from --trace")
    p_trace.add_argument(
        "--chrome", action="store_true",
        help="export Chrome tracing JSON (chrome://tracing, Perfetto)",
    )
    p_trace.add_argument(
        "--flame", action="store_true",
        help="export folded stacks (flamegraph.pl / speedscope input)",
    )
    p_trace.add_argument(
        "--validate", action="store_true",
        help="schema-validate even when exporting (the default action "
        "when no exporter is chosen)",
    )
    p_trace.add_argument(
        "-o", "--output",
        help="output path ('-' for stdout; default: <tracefile> plus "
        "'.chrome.json' or '.folded')",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report",
        help="summarize an obs trace: RFN iterations, fuzz rollups, "
        "worker lanes, counters",
    )
    p_report.add_argument("tracefile", help="JSONL trace from --trace")
    p_report.set_defaults(func=cmd_report)
    return parser


def _partial_report() -> Dict[str, object]:
    """Snapshot of an interrupted ``verify`` run: iterations completed,
    budget spent and the last checkpoint (written now if possible)."""
    report: Dict[str, object] = {
        "status": "interrupted",
        "iterations": 0,
        "budget_spent": None,
        "checkpoint": _PARTIAL.get("checkpoint_path"),
    }
    rfn = _PARTIAL.get("rfn")
    if rfn is not None:
        report["iterations"] = len(rfn.iterations)
        start = _PARTIAL.get("start")
        elapsed = (
            time.monotonic() - start if start is not None else 0.0
        )
        try:
            path = rfn.save_checkpoint("in_progress", elapsed)
        except OSError:
            path = None
        if path is not None:
            report["checkpoint"] = path
    budget = _PARTIAL.get("budget")
    if budget is not None:
        report["budget_spent"] = budget.spent()
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _PARTIAL.clear()
    trace_path = getattr(args, "trace", None)
    try:
        if trace_path:
            obs.TRACER.enable(trace_path)
        return args.func(args)
    except KeyboardInterrupt:
        print(json.dumps(_partial_report(), indent=2, sort_keys=True))
        print("interrupted", file=sys.stderr)
        return 130
    except NetlistError as error:
        # Unparseable/invalid design input: one clean diagnostic with
        # file/line context, exit 2 (distinct from usage errors).
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        if trace_path:
            obs.TRACER.close()
            print(f"obs trace written to {trace_path}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
