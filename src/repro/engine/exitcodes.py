"""The one exit-code ladder for every CLI surface.

Severity order (what wins when a batch mixes outcomes)::

    falsified (1)  >  infrastructure (4)  >  inconclusive (2)
                   >  verified (0)

plus the out-of-band codes: ``3`` for usage errors, ``75`` (EX_TEMPFAIL)
when a loaded service sheds a job with ``RETRY_LATER``, and ``130`` for
an interrupt.  ``cli.py``, ``serve.client`` and the batch runner all
call into this module; nothing else may spell an exit code.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.engine.verdict import Verdict

EXIT_VERIFIED = 0
EXIT_FALSIFIED = 1
EXIT_INCONCLUSIVE = 2
EXIT_USAGE = 3
EXIT_INFRASTRUCTURE = 4
EXIT_RETRY_LATER = 75  # EX_TEMPFAIL: the service shed the job
EXIT_INTERRUPTED = 130


def verdict_to_exit(
    verdict: Union[Verdict, str, None],
    *,
    infrastructure: bool = False,
) -> int:
    """Exit code for one verification outcome.

    ``infrastructure`` forces the infrastructure code regardless of the
    verdict (a job whose retries were exhausted is a service failure
    even though its recorded verdict is ``error`` anyway).  ``None`` or
    an unrecognized verdict string count as inconclusive.
    """
    if infrastructure:
        return EXIT_INFRASTRUCTURE
    if verdict is None:
        return EXIT_INCONCLUSIVE
    try:
        verdict = Verdict.coerce(verdict)
    except ValueError:
        return EXIT_INCONCLUSIVE
    if verdict is Verdict.VERIFIED:
        return EXIT_VERIFIED
    if verdict is Verdict.FALSIFIED:
        return EXIT_FALSIFIED
    if verdict is Verdict.ERROR:
        return EXIT_INFRASTRUCTURE
    return EXIT_INCONCLUSIVE


def batch_exit(counts: Mapping[str, int], infrastructure: int = 0) -> int:
    """Exit code for a batch of verdict counts (keys are verdict wire
    strings, e.g. a ``Counter`` over result records).

    A single falsification dominates everything -- that is the finding
    the batch exists to surface; infrastructure failures outrank mere
    inconclusiveness; all-verified is the only success.
    """
    if counts.get(Verdict.FALSIFIED):
        return EXIT_FALSIFIED
    if infrastructure:
        return EXIT_INFRASTRUCTURE
    if len(counts) == 1 and counts.get(Verdict.VERIFIED):
        return EXIT_VERIFIED
    return EXIT_INCONCLUSIVE


def result_exit(result: Optional[dict]) -> int:
    """Exit code for one service result payload (a ``results/`` file or
    a shed reply)."""
    if result is None:
        return EXIT_USAGE
    if result.get("reply") == "RETRY_LATER":
        return EXIT_RETRY_LATER
    return verdict_to_exit(
        result.get("verdict"),
        infrastructure=bool(result.get("infrastructure")),
    )
