"""The `Engine` protocol and the name-keyed engine registry.

An engine is anything that answers ``run(circuit, prop, limits) ->
VerifyResult``.  Subclasses implement :meth:`Engine._run`; the public
:meth:`Engine.run` wraps it with the standard containment the rest of
the system relies on (contained aborts degrade to ``UNKNOWN`` with an
:class:`AbortInfo`, crashes degrade to ``ERROR``) and stamps elapsed
time and the ``PERF`` snapshot.  Callers that do their own containment
-- the portfolio worker, the fuzz oracle -- pass ``contain=False`` and
keep their historical failure classification byte-for-byte.

Capability tags are advisory labels consumers can filter on: the paper
distinguishes *formal*, *simulation* and *hybrid* engines, and a
portfolio scheduler cares whether an engine can ever answer VERIFIED
(``sound-for-true``) or is a falsification specialist.

The registry is deliberately lazy: ``repro.engine`` is imported by
`core.rfn` (for the verdict algebra) while the adapters import
`core.rfn` (to run the CEGAR loop).  Loading adapters on first lookup
-- not at package import -- is what breaks that cycle.
"""

from __future__ import annotations

import abc
import contextlib
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.property import UnreachabilityProperty
from repro.engine.result import Limits, VerifyResult
from repro.engine.verdict import Verdict
from repro.kernel.perf import PERF
from repro.netlist.circuit import Circuit
from repro.runtime.supervisor import CONTAINED, AbortInfo

#: Capability tags.
SOUND_FOR_TRUE = "sound-for-true"    #: a VERIFIED answer is trustworthy
SOUND_FOR_FALSE = "sound-for-false"  #: a FALSIFIED answer is trustworthy
BOUNDED = "bounded"                  #: explores up to a depth bound only
COMPLETE = "complete"                #: terminates with a definite answer
                                     #: given enough resources
NEEDS_ABSTRACT_MODEL = "needs-abstract-model"  #: reserved: runs on an
                                     #: abstraction, not the concrete design
FORMAL = "formal"                    #: symbolic/SAT/BDD engine
SIMULATION = "simulation"            #: explicit simulation engine
HYBRID = "hybrid"                    #: formal+simulation combination

CAPABILITIES = (
    SOUND_FOR_TRUE,
    SOUND_FOR_FALSE,
    BOUNDED,
    COMPLETE,
    NEEDS_ABSTRACT_MODEL,
    FORMAL,
    SIMULATION,
    HYBRID,
)


class Engine(abc.ABC):
    """One verification engine behind the canonical entrypoint."""

    name: str = ""
    description: str = ""
    capabilities: frozenset = frozenset()

    @abc.abstractmethod
    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        """Engine body; may raise (containment happens in :meth:`run`)."""

    def run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Optional[Limits] = None,
        *,
        contain: bool = True,
    ) -> VerifyResult:
        """Run the engine; with ``contain`` (the default) this never
        raises short of ``KeyboardInterrupt``: contained aborts come
        back as ``UNKNOWN`` + :class:`AbortInfo`, crashes as ``ERROR``.
        ``contain=False`` propagates raw exceptions for callers with
        their own classification."""
        limits = limits if limits is not None else Limits()
        start = time.perf_counter()
        try:
            result = self._run(circuit, prop, limits)
        except CONTAINED as error:
            if not contain:
                raise
            abort = AbortInfo.from_exception(self.name, error)
            result = VerifyResult(
                engine=self.name,
                verdict=Verdict.UNKNOWN,
                detail=abort.describe(),
                abort=abort,
            )
        except Exception as error:
            if not contain:
                raise
            result = VerifyResult(
                engine=self.name,
                verdict=Verdict.ERROR,
                detail=f"{type(error).__name__}: {error}",
            )
        if not result.seconds:
            result.seconds = time.perf_counter() - start
        if not result.perf:
            result.perf = PERF.snapshot()
        return result

    def describe(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "capabilities": sorted(self.capabilities),
        }


EngineBody = Callable[
    [Circuit, UnreachabilityProperty, Limits], VerifyResult
]


class FunctionEngine(Engine):
    """An engine wrapping a plain callable -- the adapter for ad-hoc
    bodies (service-layer checkpoint wiring, test stubs)."""

    def __init__(
        self,
        name: str,
        body: EngineBody,
        description: str = "",
        capabilities: frozenset = frozenset(),
    ) -> None:
        self.name = name
        self.description = description
        self.capabilities = capabilities
        self._body = body

    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        return self._body(circuit, prop, limits)


class EngineRegistry:
    """Name-keyed engine registry with a lazy default-population hook.

    ``loader`` runs once, on first access, and registers the built-in
    adapters; explicit :meth:`register` calls before that first access
    also trigger it (so a replacement really replaces the built-in
    rather than shadowing a not-yet-loaded one).
    """

    def __init__(self, loader: Optional[Callable[[], None]] = None) -> None:
        self._engines: Dict[str, Engine] = {}
        self._loader = loader
        self._loaded = loader is None

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self._loaded = True  # set first: the loader calls register()
            loader = self._loader
            assert loader is not None
            loader()

    def register(self, engine: Engine, replace: bool = False) -> Engine:
        """Add an engine under its own name; ``replace`` allows
        overriding an existing entry (tests substitute instrumented
        engines this way -- the patch is inherited by forked workers)."""
        self._ensure_loaded()
        if not engine.name:
            raise ValueError("an engine needs a non-empty name")
        if engine.name in self._engines and not replace:
            raise ValueError(f"engine {engine.name!r} already registered")
        self._engines[engine.name] = engine
        return engine

    def get(self, name: str) -> Engine:
        self._ensure_loaded()
        try:
            return self._engines[name]
        except KeyError:
            raise KeyError(
                f"unknown engine {name!r} (known: {', '.join(self.names())})"
            ) from None

    def names(self) -> Tuple[str, ...]:
        self._ensure_loaded()
        return tuple(sorted(self._engines))

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._engines

    def __iter__(self) -> Iterator[Engine]:
        self._ensure_loaded()
        return iter([self._engines[name] for name in sorted(self._engines)])

    def describe(self) -> List[dict]:
        """JSON-able listing (the ``repro engines`` command)."""
        return [engine.describe() for engine in self]

    @contextlib.contextmanager
    def overlay(self, *engines: Engine) -> Iterator[None]:
        """Temporarily replace entries (by name); restores the previous
        mapping on exit.  The registry object is mutated in place, so
        workers forked inside the block inherit the overlay."""
        self._ensure_loaded()
        saved = dict(self._engines)
        try:
            for engine in engines:
                self.register(engine, replace=True)
            yield
        finally:
            self._engines.clear()
            self._engines.update(saved)


def _load_default_engines() -> None:
    # Imported here, not at module top: the adapters import the engine
    # implementations (core.rfn among them), and core.rfn imports this
    # package for the verdict algebra.
    import repro.engine.adapters  # noqa: F401


#: The process-wide registry every consumer resolves names against.
registry = EngineRegistry(loader=_load_default_engines)
