"""Adapters putting every engine in the repo behind the `Engine`
protocol.

Importing this module registers the six built-in engines (the registry
loads it lazily on first lookup):

- ``bmc``         -- plain bounded model checking (falsification
  specialist; never answers VERIFIED),
- ``kinduction``  -- k-induction with simple-path constraints,
- ``bdd``         -- BDD forward reachability on the COI reduction,
- ``rfn``         -- the paper's abstraction-refinement CEGAR loop,
- ``kernel``      -- exhaustive explicit-state BFS with bit-parallel
  next-state evaluation,
- ``atpg``        -- iteratively-deepened sequential ATPG targeting the
  property cube.

Every adapter normalizes its engine's native result type to a
:class:`VerifyResult` with the canonical verdict and a witness kind, so
the portfolio, the fuzz oracle, the service and the CLI all speak one
dialect.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Tuple

from repro.atpg.engine import AtpgBudget, AtpgOutcome, sequential_atpg
from repro.core.property import UnreachabilityProperty
from repro.engine.base import (
    BOUNDED,
    COMPLETE,
    FORMAL,
    HYBRID,
    SIMULATION,
    SOUND_FOR_FALSE,
    SOUND_FOR_TRUE,
    Engine,
    registry,
)
from repro.engine.result import (
    WITNESS_EXHAUSTIVE,
    WITNESS_INVARIANT,
    WITNESS_KINDUCTION,
    WITNESS_TRACE,
    Limits,
    VerifyResult,
)
from repro.engine.verdict import Verdict
from repro.mc.bmc import BmcOutcome, bmc
from repro.mc.checker import _extract_error_trace
from repro.mc.encode import SymbolicEncoding
from repro.mc.images import ImageComputer
from repro.mc.reach import ReachLimits, ReachOutcome, forward_reach
from repro.netlist.circuit import Circuit
from repro.netlist.ops import coi_registers, extract_subcircuit
from repro.trace import Trace


def _sat_depth(circuit: Circuit) -> int:
    """Default unrolling cap: with simple-path constraints k-induction
    is complete at the recurrence diameter, itself bounded by the state
    count."""
    if circuit.num_registers >= 7:
        return 130
    return (1 << circuit.num_registers) + 2


class BmcEngine(Engine):
    name = "bmc"
    description = (
        "plain bounded model checking (falsification specialist)"
    )
    capabilities = frozenset({FORMAL, BOUNDED, SOUND_FOR_FALSE})

    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        depth = (
            limits.max_depth
            if limits.max_depth is not None
            else _sat_depth(circuit)
        )
        result = bmc(
            circuit,
            prop,
            max_depth=depth,
            max_conflicts=limits.max_conflicts,
            max_seconds=limits.max_seconds,
            induction=False,
            budget=limits.budget,
        )
        if result.outcome is BmcOutcome.FALSE:
            return VerifyResult(
                engine=self.name,
                verdict=Verdict.FALSIFIED,
                detail=f"counterexample at depth {result.depth}",
                witness=WITNESS_TRACE,
                trace=result.trace,
                seconds=result.seconds,
            )
        return VerifyResult(
            engine=self.name,
            verdict=Verdict.UNKNOWN,
            detail=f"no counterexample within depth {result.depth}",
            seconds=result.seconds,
        )


class KInductionEngine(Engine):
    name = "kinduction"
    description = (
        "k-induction with simple-path constraints (complete at the "
        "recurrence diameter)"
    )
    capabilities = frozenset(
        {FORMAL, BOUNDED, COMPLETE, SOUND_FOR_TRUE, SOUND_FOR_FALSE}
    )

    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        depth = (
            limits.max_depth
            if limits.max_depth is not None
            else _sat_depth(circuit)
        )
        result = bmc(
            circuit,
            prop,
            max_depth=depth,
            max_conflicts=limits.max_conflicts,
            max_seconds=limits.max_seconds,
            induction=True,
            unique_states=True,
            budget=limits.budget,
        )
        if result.outcome is BmcOutcome.TRUE:
            return VerifyResult(
                engine=self.name,
                verdict=Verdict.VERIFIED,
                detail=f"k-induction at depth {result.induction_depth}",
                witness=WITNESS_KINDUCTION,
                seconds=result.seconds,
            )
        if result.outcome is BmcOutcome.FALSE:
            return VerifyResult(
                engine=self.name,
                verdict=Verdict.FALSIFIED,
                detail=f"counterexample at depth {result.depth}",
                witness=WITNESS_TRACE,
                trace=result.trace,
                seconds=result.seconds,
            )
        return VerifyResult(
            engine=self.name,
            verdict=Verdict.UNKNOWN,
            detail=f"inconclusive at depth {result.depth}",
            seconds=result.seconds,
        )


class BddReachEngine(Engine):
    name = "bdd"
    description = (
        "BDD forward reachability on the cone-of-influence reduction"
    )
    capabilities = frozenset(
        {FORMAL, COMPLETE, SOUND_FOR_TRUE, SOUND_FOR_FALSE}
    )

    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        prop.validate_against(circuit)
        coi = coi_registers(circuit, prop.signals())
        reduced = extract_subcircuit(
            circuit, coi, prop.signals(), name=f"{circuit.name}.coi"
        )
        encoding = SymbolicEncoding(reduced)
        encoding.bdd.auto_reorder = True
        images = ImageComputer(encoding)
        target = encoding.state_cube(dict(prop.target))
        reach_limits = ReachLimits(
            max_seconds=limits.max_seconds, budget=limits.budget
        )
        if limits.max_bdd_nodes is not None:
            reach_limits.max_nodes = limits.max_bdd_nodes
        reach = forward_reach(
            images, encoding.initial_states(), target=target,
            limits=reach_limits,
        )
        if reach.outcome is ReachOutcome.FIXPOINT:
            return VerifyResult(
                engine=self.name,
                verdict=Verdict.VERIFIED,
                detail=f"fixpoint after {reach.iterations} images",
                witness=WITNESS_INVARIANT,
                seconds=reach.seconds,
                invariant=reach.reached,
                invariant_encoding=encoding,
            )
        if reach.outcome is ReachOutcome.TARGET_HIT:
            trace = _extract_error_trace(encoding, images, reach, target)
            return VerifyResult(
                engine=self.name,
                verdict=Verdict.FALSIFIED,
                detail=f"target hit in ring {reach.hit_ring}",
                witness=WITNESS_TRACE,
                trace=trace,
                seconds=reach.seconds,
            )
        return VerifyResult(
            engine=self.name,
            verdict=Verdict.UNKNOWN,
            detail="reachability resource limit",
            seconds=reach.seconds,
        )


class RfnEngine(Engine):
    name = "rfn"
    description = (
        "abstraction-refinement CEGAR loop (the paper's RFN algorithm)"
    )
    capabilities = frozenset({HYBRID, SOUND_FOR_TRUE, SOUND_FOR_FALSE})

    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        # Imported lazily: core.rfn dispatches to repro.parallel when
        # RfnConfig.parallel is set, and that module-level cycle must
        # break somewhere.
        from repro.core.rfn import RFN, RfnConfig

        result = RFN(
            circuit,
            prop,
            RfnConfig(
                max_seconds=limits.max_seconds, budget=limits.budget
            ),
        ).run()
        iterations = len(result.iterations)
        if result.verified:
            return VerifyResult(
                engine=self.name,
                verdict=Verdict.VERIFIED,
                detail=f"CEGAR verified in {iterations} iterations",
                witness=WITNESS_INVARIANT,
                seconds=result.seconds,
                invariant=result.invariant,
                invariant_encoding=result.invariant_encoding,
            )
        if result.falsified:
            return VerifyResult(
                engine=self.name,
                verdict=Verdict.FALSIFIED,
                detail=f"CEGAR falsified in {iterations} iterations",
                witness=WITNESS_TRACE,
                trace=result.trace,
                seconds=result.seconds,
            )
        return VerifyResult(
            engine=self.name,
            verdict=Verdict.UNKNOWN,
            detail=result.detail or "CEGAR resource limit",
            seconds=result.seconds,
        )


class KernelBfsEngine(Engine):
    """Exhaustive breadth-first reachability with bit-parallel
    next-state evaluation: every (frontier state, input vector) pair is
    one lane of a kernel sweep.  Complete whenever the caps hold, which
    the fuzz generator guarantees by construction."""

    name = "kernel"
    description = (
        "exhaustive explicit-state BFS on the bit-parallel simulator"
    )
    capabilities = frozenset(
        {SIMULATION, COMPLETE, SOUND_FOR_TRUE, SOUND_FOR_FALSE}
    )

    #: caps beyond which exhaustive enumeration is declined (UNKNOWN)
    max_inputs = 6
    max_free_init = 4
    default_max_states = 1 << 13
    chunk_lanes = 256

    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        from repro.kernel import BitParallelSimulator
        from repro.kernel.bitsim import pack_lanes, planes_value

        def answer(
            verdict: Verdict,
            detail: str,
            witness: Optional[str] = None,
            trace: Optional[Trace] = None,
        ) -> VerifyResult:
            return VerifyResult(
                engine=self.name,
                verdict=verdict,
                detail=detail,
                witness=witness,
                trace=trace,
            )

        max_states = (
            limits.max_states
            if limits.max_states is not None
            else self.default_max_states
        )
        prop.validate_against(circuit)
        registers = list(circuit.registers)
        inputs = list(circuit.inputs)
        if len(inputs) > self.max_inputs:
            return answer(
                Verdict.UNKNOWN,
                f"{len(inputs)} inputs exceed exhaustive cap",
            )
        free = [r for r in registers if circuit.registers[r].init is None]
        if len(free) > self.max_free_init:
            return answer(
                Verdict.UNKNOWN,
                f"{len(free)} free-init registers exceed cap",
            )

        input_vectors = [
            dict(zip(inputs, bits))
            for bits in itertools.product((0, 1), repeat=len(inputs))
        ]
        base = {
            name: reg.init
            for name, reg in circuit.registers.items()
            if reg.init is not None
        }
        initial_states = []
        for bits in itertools.product((0, 1), repeat=len(free)):
            state = dict(base)
            state.update(zip(free, bits))
            initial_states.append(state)

        def key_of(state: Mapping[str, int]) -> Tuple[int, ...]:
            return tuple(state[r] for r in registers)

        def make_trace(last_key: Tuple[int, ...]) -> Trace:
            # Walk parent pointers back to an initial state; the bad
            # state itself becomes the final cycle with a vacuous input
            # vector (the shape mc.checker produces).
            path: List[Tuple[int, ...]] = []
            steps: List[Dict[str, int]] = []
            key: Optional[Tuple[int, ...]] = last_key
            while key is not None:
                path.append(key)
                parent_key, via = parent[key]
                if via is not None:
                    steps.append(via)
                key = parent_key
            path.reverse()
            steps.reverse()
            states = [dict(zip(registers, k)) for k in path]
            steps.append({name: 0 for name in inputs})
            return Trace(
                states=states, inputs=steps, circuit_name=circuit.name
            )

        parent: Dict[
            Tuple[int, ...],
            Tuple[Optional[Tuple[int, ...]], Optional[Dict[str, int]]],
        ] = {}
        frontier: List[Dict[str, int]] = []
        for state in initial_states:
            key = key_of(state)
            if key in parent:
                continue
            parent[key] = (None, None)
            if prop.holds_in_state(state):
                return answer(
                    Verdict.FALSIFIED,
                    "bad initial state",
                    witness=WITNESS_TRACE,
                    trace=make_trace(key),
                )
            frontier.append(state)

        sim = BitParallelSimulator(circuit)
        budget = limits.budget
        if budget is not None:
            sim.checkpoint = budget.hook("kernel")
        explored = 0
        while frontier:
            if budget is not None:
                budget.checkpoint(engine="kernel")
            if len(parent) > max_states:
                return answer(
                    Verdict.UNKNOWN,
                    f"state cap {max_states} exceeded",
                )
            pairs = [
                (state, vector)
                for state in frontier
                for vector in input_vectors
            ]
            frontier = []
            for lo in range(0, len(pairs), self.chunk_lanes):
                chunk = pairs[lo : lo + self.chunk_lanes]
                lanes = len(chunk)
                frame = sim.evaluate(
                    pack_lanes([p[0] for p in chunk]),
                    pack_lanes([p[1] for p in chunk]),
                    lanes,
                )
                next_planes = sim.next_state(frame)
                explored += lanes
                for lane, (state, vector) in enumerate(chunk):
                    successor = {
                        r: planes_value(next_planes[r], lane)
                        for r in registers
                    }
                    key = key_of(successor)
                    if key in parent:
                        continue
                    parent[key] = (key_of(state), dict(vector))
                    if prop.holds_in_state(successor):
                        return answer(
                            Verdict.FALSIFIED,
                            f"bad state after exploring {explored} edges",
                            witness=WITNESS_TRACE,
                            trace=make_trace(key),
                        )
                    frontier.append(successor)
        return answer(
            Verdict.VERIFIED,
            f"{len(parent)} reachable states, no bad state",
            witness=WITNESS_EXHAUSTIVE,
        )


class AtpgEngine(Engine):
    """Iteratively-deepened sequential ATPG: at each depth ``k`` the
    test generator searches for a ``k+1``-cycle trace whose final cycle
    satisfies the property's target cube.  A found test is a concrete
    counterexample (the generator replays it on the simulator before
    returning); exhausting the depth bound proves nothing, so the
    engine never answers VERIFIED."""

    name = "atpg"
    description = (
        "iteratively-deepened sequential ATPG targeting the property "
        "cube (falsification specialist)"
    )
    capabilities = frozenset({SIMULATION, BOUNDED, SOUND_FOR_FALSE})

    def _run(
        self,
        circuit: Circuit,
        prop: UnreachabilityProperty,
        limits: Limits,
    ) -> VerifyResult:
        prop.validate_against(circuit)
        max_depth = (
            limits.max_depth
            if limits.max_depth is not None
            else _sat_depth(circuit)
        )
        budget = AtpgBudget(
            max_conflicts=limits.max_conflicts,
            max_seconds=limits.max_seconds,
            runtime=limits.budget,
        )
        target = dict(prop.target)
        for depth in range(max_depth + 1):
            result = sequential_atpg(
                circuit,
                depth + 1,
                {depth: target},
                budget=budget,
            )
            if result.outcome is AtpgOutcome.TRACE_FOUND:
                return VerifyResult(
                    engine=self.name,
                    verdict=Verdict.FALSIFIED,
                    detail=f"test found at depth {depth}",
                    witness=WITNESS_TRACE,
                    trace=result.trace,
                )
            if result.outcome is AtpgOutcome.ABORTED:
                return VerifyResult(
                    engine=self.name,
                    verdict=Verdict.UNKNOWN,
                    detail=f"aborted at depth {depth}",
                )
        return VerifyResult(
            engine=self.name,
            verdict=Verdict.UNKNOWN,
            detail=f"no test within depth {max_depth}",
        )


registry.register(BddReachEngine())
registry.register(RfnEngine())
registry.register(KInductionEngine())
registry.register(BmcEngine())
registry.register(KernelBfsEngine())
registry.register(AtpgEngine())
