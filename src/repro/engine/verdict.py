"""The canonical verdict algebra shared by every verification layer.

Every engine in this repo -- the CEGAR loop, the SAT engines, BDD
reachability, the exhaustive kernel, ATPG -- answers the same question:
*is the property's target cube reachable?*  This module is the one
place that answer is spelled.  A verdict is one of four values:

- ``VERIFIED``   -- the target is unreachable (property holds),
- ``FALSIFIED``  -- a concrete counterexample trace exists,
- ``UNKNOWN``    -- the engine ran out of resources or is incomplete,
- ``ERROR``      -- the engine itself malfunctioned (a crash, not an
  abort: aborts are ``UNKNOWN`` with an :class:`AbortInfo` attached).

``Verdict`` subclasses ``str`` so members compare, hash, format and
JSON-serialize exactly like the bare literals they replace: a verdict
travels through a pickle pipe, a journal line, or a result file as the
plain string ``"verified"``, and ``Verdict("verified")`` recovers the
member on the far side.  (``enum.StrEnum`` would be the modern spelling
but the support floor is Python 3.9.)

The algebra
-----------

Verdicts form a partial information order: ``UNKNOWN`` says nothing,
``ERROR`` says "something ran and misbehaved" (strictly more alarming
than nothing), and the two definite verdicts sit incomparably at the
top::

        VERIFIED        FALSIFIED
               \\        /
                 ERROR
                   |
                UNKNOWN

:meth:`Verdict.join` is the least upper bound -- *definite wins*: it is
how a portfolio race or an oracle panel combines independent answers
about the **same** instance.  Because every engine here is sound, two
definite answers can never conflict; ``join(VERIFIED, FALSIFIED)``
therefore raises :class:`DisagreeError` instead of picking a winner --
a disagreement is a soundness bug in an engine (or an injected fault),
never a result.

:meth:`Verdict.meet` is the greatest lower bound -- *doubt wins*: the
strongest claim **all** parties support, used when answers must be
unanimous.  ``meet(VERIFIED, FALSIFIED)`` raises the same
:class:`DisagreeError` (there is no common ground below two
contradictory proofs other than pretending neither happened, which
would hide the soundness bug).
"""

from __future__ import annotations

import enum
import functools
from typing import Iterable


class DisagreeError(ValueError):
    """Two sound engines produced contradictory definite verdicts.

    This is never a legitimate outcome -- soundness means every definite
    answer is correct -- so the algebra refuses to absorb it into a
    lattice value and forces the caller to treat it as a finding (the
    fuzz oracle) or an infrastructure failure (the portfolio).
    """

    def __init__(self, left: "Verdict", right: "Verdict") -> None:
        self.left = left
        self.right = right
        super().__init__(f"engines disagree: {left.value} vs {right.value}")


class Verdict(str, enum.Enum):
    """Canonical engine verdict; a ``str`` subclass for wire-format
    compatibility (pickles, JSON journals and result files carry the
    bare value)."""

    VERIFIED = "verified"
    FALSIFIED = "falsified"
    UNKNOWN = "unknown"
    ERROR = "error"

    def __str__(self) -> str:  # "verified", not "Verdict.VERIFIED"
        return self.value

    __format__ = str.__format__

    @property
    def definite(self) -> bool:
        """True for the two sound, conclusive verdicts."""
        return self in _DEFINITE

    @classmethod
    def coerce(cls, value: "Verdict | str") -> "Verdict":
        """Member for a verdict or its wire string; raises ``ValueError``
        on anything else."""
        if isinstance(value, cls):
            return value
        return cls(value)

    def join(self, other: "Verdict") -> "Verdict":
        """Least upper bound: definite wins, ``ERROR`` beats
        ``UNKNOWN``; contradictory definites raise
        :class:`DisagreeError`."""
        if self is other:
            return self
        if self.definite and other.definite:
            raise DisagreeError(self, other)
        return self if _RANK[self] >= _RANK[other] else other

    def meet(self, other: "Verdict") -> "Verdict":
        """Greatest lower bound: doubt wins (the weaker claim of the
        two); contradictory definites raise :class:`DisagreeError`."""
        if self is other:
            return self
        if self.definite and other.definite:
            raise DisagreeError(self, other)
        return self if _RANK[self] <= _RANK[other] else other


#: Height in the information order.  The two definite verdicts share the
#: top rank but are incomparable -- join/meet special-case that pair
#: before consulting the rank.
_RANK = {
    Verdict.UNKNOWN: 0,
    Verdict.ERROR: 1,
    Verdict.VERIFIED: 2,
    Verdict.FALSIFIED: 2,
}

_DEFINITE = (Verdict.VERIFIED, Verdict.FALSIFIED)

#: The sound, conclusive verdicts (public alias).
DEFINITE = _DEFINITE


def join_all(
    verdicts: Iterable[Verdict], default: Verdict = Verdict.UNKNOWN
) -> Verdict:
    """Fold :meth:`Verdict.join` over a collection (``default`` for an
    empty one).  Raises :class:`DisagreeError` on the first conflict --
    the portfolio and the fuzz oracle both detect disagreement through
    exactly this call."""
    return functools.reduce(Verdict.join, verdicts, default)


def meet_all(
    verdicts: Iterable[Verdict], default: Verdict = Verdict.UNKNOWN
) -> Verdict:
    """Fold :meth:`Verdict.meet` over a collection (``default`` for an
    empty one)."""
    verdicts = list(verdicts)
    if not verdicts:
        return default
    return functools.reduce(Verdict.meet, verdicts)
