"""`repro.engine`: the unified engine layer.

One verdict algebra (:class:`Verdict`, with ``join``/``meet`` and the
``DisagreeError`` conflict signal), one result type
(:class:`VerifyResult` -- verdict + witness + trace + abort + perf),
one engine protocol (:class:`Engine` with ``run(circuit, prop, limits)
-> VerifyResult``), one name-keyed :data:`registry`, and one exit-code
ladder (:func:`verdict_to_exit`).  The portfolio, the fuzz oracle, the
verification service and the CLI are all thin consumers of this
package; adding an engine here makes it available everywhere at once.

The adapter module (which drags in every engine implementation) is
loaded lazily on first registry access; importing ``repro.engine``
itself is cheap, which is what lets `core.rfn` use the verdict algebra
without an import cycle.
"""

from repro.engine.base import (
    BOUNDED,
    CAPABILITIES,
    COMPLETE,
    FORMAL,
    HYBRID,
    NEEDS_ABSTRACT_MODEL,
    SIMULATION,
    SOUND_FOR_FALSE,
    SOUND_FOR_TRUE,
    Engine,
    EngineRegistry,
    FunctionEngine,
    registry,
)
from repro.engine.exitcodes import (
    EXIT_FALSIFIED,
    EXIT_INCONCLUSIVE,
    EXIT_INFRASTRUCTURE,
    EXIT_INTERRUPTED,
    EXIT_RETRY_LATER,
    EXIT_USAGE,
    EXIT_VERIFIED,
    batch_exit,
    result_exit,
    verdict_to_exit,
)
from repro.engine.result import (
    WITNESS_ABSTRACT_PROOF,
    WITNESS_EXHAUSTIVE,
    WITNESS_INVARIANT,
    WITNESS_KINDS,
    WITNESS_KINDUCTION,
    WITNESS_TRACE,
    Limits,
    VerifyResult,
)
from repro.engine.verdict import (
    DEFINITE,
    DisagreeError,
    Verdict,
    join_all,
    meet_all,
)

__all__ = [
    "BOUNDED",
    "CAPABILITIES",
    "COMPLETE",
    "DEFINITE",
    "DisagreeError",
    "Engine",
    "EngineRegistry",
    "EXIT_FALSIFIED",
    "EXIT_INCONCLUSIVE",
    "EXIT_INFRASTRUCTURE",
    "EXIT_INTERRUPTED",
    "EXIT_RETRY_LATER",
    "EXIT_USAGE",
    "EXIT_VERIFIED",
    "FORMAL",
    "FunctionEngine",
    "HYBRID",
    "Limits",
    "NEEDS_ABSTRACT_MODEL",
    "SIMULATION",
    "SOUND_FOR_FALSE",
    "SOUND_FOR_TRUE",
    "Verdict",
    "VerifyResult",
    "WITNESS_ABSTRACT_PROOF",
    "WITNESS_EXHAUSTIVE",
    "WITNESS_INVARIANT",
    "WITNESS_KINDS",
    "WITNESS_KINDUCTION",
    "WITNESS_TRACE",
    "batch_exit",
    "join_all",
    "meet_all",
    "registry",
    "result_exit",
    "verdict_to_exit",
]
