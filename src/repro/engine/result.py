"""`Limits` and `VerifyResult`: the one request/response pair every
engine speaks.

``Limits`` is the resource envelope an engine may spend: the countable
caps mirror :class:`~repro.runtime.budget.Budget` fields (and a live
``Budget`` rides along for engines that meter cooperatively), plus the
engine-specific knobs -- unrolling depth for the SAT engines, a state
cap for the explicit kernel.  Engines read the caps they understand and
ignore the rest.

``VerifyResult`` is the complete, self-describing answer: the canonical
:class:`~repro.engine.verdict.Verdict`, a witness kind naming *why* the
verdict can be trusted, the counterexample trace when falsified, the
contained :class:`AbortInfo` when the engine hit a resource wall, the
engine's ``PERF`` snapshot and wall-clock seconds.  Both directions of
JSON conversion are provided so results survive the journal, the result
files and the worker pipe without a per-layer serialization dialect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.engine.verdict import Verdict
from repro.runtime.budget import Budget
from repro.runtime.supervisor import AbortInfo
from repro.trace import Trace

#: Witness kinds: what a definite verdict offers as evidence.
WITNESS_TRACE = "trace"                    #: concrete counterexample
WITNESS_KINDUCTION = "k-induction"         #: inductive strengthening by depth
WITNESS_INVARIANT = "inductive-invariant"  #: reachable-set fixpoint
WITNESS_EXHAUSTIVE = "exhaustive-search"   #: full explicit state sweep
WITNESS_ABSTRACT_PROOF = "abstract-proof"  #: proof on a sound abstraction

WITNESS_KINDS = (
    WITNESS_TRACE,
    WITNESS_KINDUCTION,
    WITNESS_INVARIANT,
    WITNESS_EXHAUSTIVE,
    WITNESS_ABSTRACT_PROOF,
)


@dataclass
class Limits:
    """Resource envelope for one engine run.

    All caps are optional; ``None`` means unlimited.  A live ``Budget``
    (never serialized -- it holds a deadline and a parent link) carries
    the cooperative metering hooks; the scalar caps exist so a forked
    worker can rebuild an equivalent budget on its side of the pipe.
    """

    max_seconds: Optional[float] = None
    max_depth: Optional[int] = None
    max_conflicts: Optional[int] = None
    max_bdd_nodes: Optional[int] = None
    max_memory_mb: Optional[float] = None
    max_states: Optional[int] = None
    budget: Optional[Budget] = None

    def unlimited(self) -> bool:
        """True when no cap of any kind is set."""
        return (
            self.max_seconds is None
            and self.max_depth is None
            and self.max_conflicts is None
            and self.max_bdd_nodes is None
            and self.max_memory_mb is None
            and self.max_states is None
            and self.budget is None
        )


@dataclass
class VerifyResult:
    """One engine's complete answer to one verification instance."""

    engine: str
    verdict: Verdict = Verdict.UNKNOWN
    detail: str = ""
    #: witness kind (one of ``WITNESS_KINDS``) for definite verdicts;
    #: None when there is nothing to certify (unknown/error).
    witness: Optional[str] = None
    trace: Optional[Trace] = None
    abort: Optional[AbortInfo] = None
    seconds: float = 0.0
    perf: Dict[str, object] = field(default_factory=dict)
    #: Process-local proof artifacts (BDD function + encoding for an
    #: inductive-invariant witness).  Never serialized -- BDD nodes do
    #: not cross process boundaries; certification happens in-process.
    invariant: Optional[object] = None
    invariant_encoding: Optional[object] = None

    @property
    def definite(self) -> bool:
        return self.verdict.definite

    @property
    def verified(self) -> bool:
        return self.verdict is Verdict.VERIFIED

    @property
    def falsified(self) -> bool:
        return self.verdict is Verdict.FALSIFIED

    def to_json(self, include_trace: bool = False) -> dict:
        payload = {
            "engine": self.engine,
            "verdict": self.verdict.value,
            "detail": self.detail,
            "witness": self.witness,
            "trace_length": None if self.trace is None else self.trace.length,
            "abort": None if self.abort is None else self.abort.to_json(),
            "seconds": round(self.seconds, 4),
        }
        if include_trace and self.trace is not None:
            payload["trace"] = self.trace.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "VerifyResult":
        trace = payload.get("trace")
        abort = payload.get("abort")
        return cls(
            engine=payload["engine"],
            verdict=Verdict(payload.get("verdict", "unknown")),
            detail=payload.get("detail", ""),
            witness=payload.get("witness"),
            trace=None if trace is None else Trace.from_json(trace),
            abort=None if abort is None else AbortInfo(**abort),
            seconds=payload.get("seconds", 0.0),
        )
