"""Traces and cubes.

Following Section 2: a *cube* is a valuation of some signals, a *state* is
a valuation of all registers, an *input vector* a valuation of all primary
inputs, and a trace ``t = a1, v1, a2, v2, ..., ak`` alternates states and
input vectors with ``a_{i+1}`` the successor of ``a_i`` under ``v_i``.

A :class:`Trace` here stores one (possibly partial) state cube and one
(possibly partial) input cube per cycle.  Abstract error traces from the
hybrid engine are partial; concrete traces from sequential ATPG are total
over their circuit.  Because abstract models preserve signal names, the
same class describes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

Cube = Dict[str, int]


@dataclass
class Trace:
    """A sequence of per-cycle state cubes and input cubes."""

    states: List[Cube] = field(default_factory=list)
    inputs: List[Cube] = field(default_factory=list)
    circuit_name: str = ""

    def __post_init__(self) -> None:
        if len(self.states) != len(self.inputs):
            raise ValueError(
                "a trace needs one state cube and one input cube per cycle "
                f"(got {len(self.states)} states, {len(self.inputs)} inputs)"
            )

    @property
    def length(self) -> int:
        """Number of cycles."""
        return len(self.states)

    def append_cycle(self, state: Cube, inputs: Cube) -> None:
        self.states.append(dict(state))
        self.inputs.append(dict(inputs))

    def to_json(self) -> dict:
        """JSON-able form (cubes are plain name->bit dicts already)."""
        return {
            "states": [dict(cube) for cube in self.states],
            "inputs": [dict(cube) for cube in self.inputs],
            "circuit_name": self.circuit_name,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "Trace":
        return cls(
            states=[dict(cube) for cube in payload.get("states", [])],
            inputs=[dict(cube) for cube in payload.get("inputs", [])],
            circuit_name=payload.get("circuit_name", ""),
        )

    def cube_at(self, cycle: int) -> Cube:
        """State and input assignments of one cycle merged into a cube."""
        merged = dict(self.states[cycle])
        merged.update(self.inputs[cycle])
        return merged

    def constraint_cubes(self) -> List[Cube]:
        """Per-cycle cubes, the form the ATPG engines consume."""
        return [self.cube_at(cycle) for cycle in range(self.length)]

    def assigned_signals(self) -> Dict[str, int]:
        """Map signal -> number of cycles in which the trace assigns it."""
        counts: Dict[str, int] = {}
        for cycle in range(self.length):
            for name in self.cube_at(cycle):
                counts[name] = counts.get(name, 0) + 1
        return counts

    def restricted_to(self, signals) -> "Trace":
        """A copy keeping only assignments to ``signals``."""
        keep = set(signals)
        return Trace(
            states=[
                {k: v for k, v in cube.items() if k in keep}
                for cube in self.states
            ],
            inputs=[
                {k: v for k, v in cube.items() if k in keep}
                for cube in self.inputs
            ],
            circuit_name=self.circuit_name,
        )

    def uses_only(self, signals) -> bool:
        """Does the trace assign nothing outside ``signals``?"""
        allowed = set(signals)
        return all(
            set(self.states[c]) | set(self.inputs[c]) <= allowed
            for c in range(self.length)
        )

    def format(self, signals: Optional[List[str]] = None) -> str:
        """Waveform-style text rendering (one row per signal)."""
        if signals is None:
            names = sorted(
                {n for c in range(self.length) for n in self.cube_at(c)}
            )
        else:
            names = list(signals)
        width = max((len(n) for n in names), default=5)
        lines = [
            f"trace of {self.circuit_name or '<circuit>'} "
            f"({self.length} cycles)"
        ]
        header = " " * (width + 2) + " ".join(
            f"{c:>2}" for c in range(self.length)
        )
        lines.append(header)
        for name in names:
            row = []
            for cycle in range(self.length):
                value = self.cube_at(cycle).get(name)
                row.append(" -" if value is None else f"{value:>2}")
            lines.append(f"{name:<{width}}  " + " ".join(row))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Trace(cycles={self.length}, circuit={self.circuit_name!r})"


def cube_conflicts(cube: Mapping[str, int], values: Mapping[str, int]) -> List[str]:
    """Signals whose 3-valued simulated value conflicts with the cube.

    The unknown value X (2) conflicts with nothing (Section 2.4)."""
    conflicting = []
    for name, expected in cube.items():
        actual = values.get(name, 2)
        if actual != 2 and actual != expected:
            conflicting.append(name)
    return conflicting
