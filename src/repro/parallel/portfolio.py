"""The racing portfolio executor (first definite verdict wins).

``race`` runs every strategy on the same obligation, each inside its
own budget slice (see :mod:`repro.parallel.envelope`):

- ``jobs <= 1``: in-process reference mode -- the slices burn one after
  another in :data:`~repro.parallel.worker.STRATEGY_ORDER`, stopping at
  the first definite verdict.  This is the baseline the determinism
  suite compares against.
- ``jobs >= 2``: up to ``jobs`` forked workers run concurrently; as a
  worker returns an indefinite envelope the next pending strategy is
  backfilled into its slot.  The first definite envelope cancels every
  other worker (``terminate`` then ``join``); losers' slices overlap
  instead of serializing, which is the whole wall-clock win.

Cancellation protocol: workers are daemonic and write exactly one
envelope to their pipe.  The parent polls with
``multiprocessing.connection.wait``; on a winner (or ``KeyboardInterrupt``)
it terminates, joins and reaps every live worker in a ``finally`` block,
so no orphan can outlive the call.

Determinism contract: every strategy is sound, so *which* strategy wins
cannot change the verdict, only the latency.  Falsification witnesses
are normalized in the parent through :func:`canonical_witness` -- a
lexicographically-minimal shortest counterexample recomputed by bounded
model checking -- so the reported trace is also independent of the
winner.  What is *not* preserved in parallel mode: the winning strategy
name, per-strategy timings, and VERIFIED results carry no inductive
invariant (BDD functions cannot cross the pipe).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.property import UnreachabilityProperty
from repro.engine import DisagreeError, Verdict, join_all
from repro.kernel.perf import PERF
from repro.mc.bmc import BmcOutcome, bmc
from repro.netlist.circuit import Circuit
from repro.obs import tracer as obs
from repro.parallel.envelope import (
    WorkerEnvelope,
    budget_from_limits,
    slice_limits,
)
from repro.parallel.worker import STRATEGY_ORDER, run_strategy, worker_main
from repro.runtime.budget import Budget
from repro.runtime.chaos import ChaosMonkey
from repro.runtime.supervisor import AbortInfo
from repro.trace import Trace


def _fork_context():
    """The fork start context, or None when the platform lacks it (then
    the race degrades to the sequential reference mode)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return None


def canonical_witness(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    witness: Trace,
) -> Trace:
    """Normalize a counterexample to *the* canonical one: shortest depth
    first, then lexicographically minimal under the circuit's signal
    declaration order (the ``bmc`` canonical-trace contract).  Bounded
    by the witness's own length, so the recomputation can never search
    deeper than what some engine already found."""
    result = bmc(
        circuit,
        prop,
        max_depth=max(0, witness.length - 1),
        max_conflicts=None,
        induction=False,
        incremental=False,
        canonical_trace=True,
    )
    if result.outcome is BmcOutcome.FALSE and result.trace is not None:
        return result.trace
    return witness


@dataclass
class PortfolioResult:
    """Outcome of one race."""

    verdict: Verdict
    trace: Optional[Trace] = None
    winner: Optional[str] = None
    jobs: int = 1
    strategies: Tuple[str, ...] = ()
    envelopes: List[WorkerEnvelope] = field(default_factory=list)
    seconds: float = 0.0
    canonical: bool = False
    #: set when two sound strategies answered with contradictory
    #: definite verdicts -- a soundness bug, reported as ERROR
    disagreement: Optional[str] = None

    @property
    def verified(self) -> bool:
        return self.verdict is Verdict.VERIFIED

    @property
    def falsified(self) -> bool:
        return self.verdict is Verdict.FALSIFIED

    @property
    def aborts(self) -> List[AbortInfo]:
        return [e.abort for e in self.envelopes if e.abort is not None]

    def envelope_of(self, strategy: str) -> Optional[WorkerEnvelope]:
        for envelope in self.envelopes:
            if envelope.strategy == strategy:
                return envelope
        return None

    def to_json(self) -> dict:
        return {
            "verdict": self.verdict.value,
            "disagreement": self.disagreement,
            "winner": self.winner,
            "jobs": self.jobs,
            "strategies": list(self.strategies),
            "trace_length": None if self.trace is None else self.trace.length,
            "canonical": self.canonical,
            "seconds": round(self.seconds, 4),
            "envelopes": [e.to_json() for e in self.envelopes],
        }


def _finish(
    result: PortfolioResult,
    circuit: Circuit,
    prop: UnreachabilityProperty,
    winning: Optional[WorkerEnvelope],
    canonicalize: bool,
    start: float,
) -> PortfolioResult:
    if winning is not None:
        result.verdict = winning.verdict
        result.winner = winning.strategy
        result.trace = winning.trace
    try:
        # The same fold the fuzz oracle uses for consensus: two sound
        # strategies can never definitely disagree, so a conflict is an
        # infrastructure-grade finding, not a result.
        join_all(e.verdict for e in result.envelopes)
    except DisagreeError as error:
        result.verdict = Verdict.ERROR
        result.disagreement = str(error)
        result.winner = None
        result.trace = None
        result.seconds = time.monotonic() - start
        return result
    if (
        canonicalize
        and result.verdict is Verdict.FALSIFIED
        and result.trace is not None
    ):
        result.trace = canonical_witness(circuit, prop, result.trace)
        result.canonical = True
    result.seconds = time.monotonic() - start
    return result


def race(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    strategies: Sequence[str] = STRATEGY_ORDER,
    jobs: int = 1,
    budget: Optional[Budget] = None,
    chaos: Optional[ChaosMonkey] = None,
    log: Optional[Callable[[str], None]] = None,
    canonicalize: bool = True,
    poll_seconds: float = 0.05,
) -> PortfolioResult:
    """Race ``strategies`` on one obligation; see the module docstring.

    Returns UNKNOWN (never raises a contained error) when no strategy
    reaches a definite verdict within its slice.
    """
    strategies = tuple(strategies)
    start = time.monotonic()
    limits = slice_limits(budget, len(strategies))
    result = PortfolioResult(
        verdict=Verdict.UNKNOWN, jobs=max(1, jobs), strategies=strategies
    )
    race_span = obs.span(
        "portfolio.race", jobs=max(1, jobs), strategies=",".join(strategies)
    )

    def finish_race(outcome: PortfolioResult) -> PortfolioResult:
        race_span.set(verdict=outcome.verdict, winner=outcome.winner)
        race_span.__exit__(None, None, None)
        return outcome

    def note(message: str) -> None:
        if log is not None:
            log(message)

    ctx = _fork_context() if jobs >= 2 else None
    if ctx is None:
        # Sequential reference mode: burn the slices in order.
        winning = None
        for strategy in strategies:
            if budget is not None and budget.expired():
                note(f"[portfolio] parent budget expired before {strategy}")
                break
            slice_budget = budget_from_limits(
                limits, name=f"portfolio/{strategy}", parent=budget
            )
            envelope = run_strategy(
                strategy, circuit, prop, slice_budget, chaos=chaos
            )
            result.envelopes.append(envelope)
            note(
                f"[portfolio] {strategy}: {envelope.verdict} "
                f"({envelope.detail}) in {envelope.seconds:.2f}s"
            )
            if envelope.definite:
                winning = envelope
                break
        return finish_race(
            _finish(result, circuit, prop, winning, canonicalize, start)
        )

    pending = list(strategies)
    running = {}  # conn -> (process, strategy, launch instant)
    winning: Optional[WorkerEnvelope] = None

    def launch(strategy: str) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, strategy, circuit, prop, limits, chaos),
            name=f"portfolio-{strategy}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the child owns its end now
        running[parent_conn] = (proc, strategy, time.monotonic())
        note(f"[portfolio] worker {proc.pid} racing {strategy}")

    def note_worker_span(
        proc, strategy: str, launched: float, outcome: str
    ) -> None:
        # The parent's view of the worker's lifetime, attributed to the
        # worker's pid lane.  This also covers *cancelled* workers, whose
        # own span buffers die with them -- guaranteeing the stitched
        # trace shows every lane that raced.
        obs.TRACER.record_span(
            "portfolio.worker",
            ts=launched,
            dur=time.monotonic() - launched,
            pid=proc.pid,
            outcome=outcome,
            attrs={"strategy": strategy},
        )

    try:
        while pending and len(running) < jobs:
            launch(pending.pop(0))
        while running and winning is None:
            ready = multiprocessing.connection.wait(
                list(running), timeout=poll_seconds
            )
            for conn in ready:
                proc, strategy, launched = running.pop(conn)
                try:
                    envelope = conn.recv()
                except (EOFError, OSError):
                    # The worker died without an envelope (hard crash,
                    # kill -9): degrade, don't raise.
                    proc.join()  # exitcode is only valid after the join
                    envelope = WorkerEnvelope(
                        strategy=strategy,
                        verdict=Verdict.ERROR,
                        detail=(
                            f"worker exited without a result "
                            f"(exitcode {proc.exitcode})"
                        ),
                        pid=proc.pid,
                    )
                finally:
                    conn.close()
                proc.join()
                result.envelopes.append(envelope)
                if envelope.perf:
                    PERF.merge(envelope.perf)
                if obs.TRACER.enabled:
                    obs.TRACER.absorb(envelope.obs)
                    note_worker_span(
                        proc, strategy, launched, envelope.verdict
                    )
                note(
                    f"[portfolio] {strategy}: {envelope.verdict} "
                    f"({envelope.detail}) in {envelope.seconds:.2f}s"
                )
                if envelope.definite and winning is None:
                    winning = envelope
                elif pending:
                    launch(pending.pop(0))
            if not ready and budget is not None and budget.expired():
                note("[portfolio] parent budget expired; cancelling race")
                break
    finally:
        for conn, (proc, strategy, launched) in list(running.items()):
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck in a syscall
                proc.kill()
                proc.join(timeout=5.0)
            conn.close()
            if obs.TRACER.enabled:
                note_worker_span(proc, strategy, launched, "cancelled")
        running.clear()

    # Keep the reported envelope order deterministic (strategy order,
    # not completion order).
    order = {name: i for i, name in enumerate(strategies)}
    result.envelopes.sort(key=lambda e: order.get(e.strategy, len(order)))
    return finish_race(
        _finish(result, circuit, prop, winning, canonicalize, start)
    )
