"""Result envelopes and budget slicing for the portfolio executor.

A worker never sends engine objects over the pipe -- BDD functions and
solver sessions are process-local -- only the :class:`WorkerEnvelope`:
a canonical :class:`~repro.engine.Verdict`, an (optional, picklable)
:class:`~repro.trace.Trace`, the contained
:class:`~repro.runtime.supervisor.AbortInfo` if the strategy aborted,
and the worker's perf-counter snapshot so the parent can fold pool-wide
totals into its own ``PERF``.

Budget slicing follows one rule: **every strategy gets the same slice
in sequential and parallel mode**.  ``slice_limits`` divides the
caller's remaining wall clock (and countable SAT/BDD resources) by the
number of strategies once, up front.  Sequential execution burns the
slices one after another; parallel execution overlaps them -- which is
where the wall-clock win comes from even on one core -- while each
individual strategy sees identical limits either way.  That equality is
what makes the determinism suite's "parallel == sequential" contract
checkable rather than aspirational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine import Limits, Verdict
from repro.runtime.budget import Budget
from repro.runtime.supervisor import AbortInfo
from repro.trace import Trace


def slice_limits(budget: Optional[Budget], ways: int) -> Limits:
    """Limits for one of ``ways`` equal budget slices.

    Wall clock and countable resources (conflicts, BDD nodes) are split
    evenly; the memory watermark is process-level and passes through
    unchanged.  With no budget at all, every field is None (unlimited).
    """
    ways = max(1, ways)
    if budget is None:
        return Limits()
    remaining = budget.remaining_seconds()
    conflicts = budget.remaining_conflicts()
    return Limits(
        max_seconds=None if remaining is None else remaining / ways,
        max_conflicts=None if conflicts is None else max(
            1, conflicts // ways
        ),
        max_bdd_nodes=None if budget.max_bdd_nodes is None else max(
            1, budget.max_bdd_nodes // ways
        ),
        max_memory_mb=budget.max_memory_mb,
    )


def budget_from_limits(
    limits: Limits,
    name: str,
    parent: Optional[Budget] = None,
) -> Optional[Budget]:
    """Materialize a slice budget.  ``parent`` (in-process sequential
    mode only) intersects deadlines and propagates charges upward; a
    forked worker passes None since the parent lives in another
    process.  A fully unlimited slice materializes as None, keeping
    engines on their no-budget fast path."""
    if parent is None and limits.unlimited():
        return None
    return Budget(
        max_seconds=limits.max_seconds,
        max_conflicts=limits.max_conflicts,
        max_bdd_nodes=limits.max_bdd_nodes,
        max_memory_mb=limits.max_memory_mb,
        name=name,
        parent=parent,
    )


@dataclass
class WorkerEnvelope:
    """One strategy's complete, pipe-safe result."""

    strategy: str
    verdict: Verdict = Verdict.UNKNOWN
    detail: str = ""
    #: witness kind for a definite verdict (``repro.engine`` constants)
    witness: Optional[str] = None
    trace: Optional[Trace] = None
    abort: Optional[AbortInfo] = None
    seconds: float = 0.0
    #: ``PERF.snapshot()`` of the worker process (empty for in-process
    #: sequential runs, whose counters land in the parent directly)
    perf: Dict[str, object] = field(default_factory=dict)
    #: the worker's drained obs trace records (``TRACER.drain()``);
    #: empty for in-process runs, whose spans land in the parent's
    #: tracer directly.  The parent absorbs these into the stitched
    #: trace next to its own spans (per-pid lanes keep them apart).
    obs: List[dict] = field(default_factory=list)
    rss_mb: Optional[float] = None
    pid: Optional[int] = None

    @property
    def definite(self) -> bool:
        return self.verdict.definite

    def to_json(self, include_trace: bool = False) -> dict:
        payload = {
            "strategy": self.strategy,
            "verdict": self.verdict.value,
            "detail": self.detail,
            "witness": self.witness,
            "trace_length": None if self.trace is None else self.trace.length,
            "abort": None if self.abort is None else self.abort.to_json(),
            "seconds": round(self.seconds, 4),
            "rss_mb": None if self.rss_mb is None else round(self.rss_mb, 1),
            "pid": self.pid,
        }
        if include_trace and self.trace is not None:
            payload["trace"] = self.trace.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "WorkerEnvelope":
        """Rebuild an envelope from :meth:`to_json` output (the journal
        round-trip; perf/obs/rss are observability extras and are not
        resurrected)."""
        trace = payload.get("trace")
        abort = payload.get("abort")
        return cls(
            strategy=payload["strategy"],
            verdict=Verdict(payload.get("verdict", "unknown")),
            detail=payload.get("detail", ""),
            witness=payload.get("witness"),
            trace=None if trace is None else Trace.from_json(trace),
            abort=None if abort is None else AbortInfo(**abort),
            seconds=payload.get("seconds", 0.0),
            pid=payload.get("pid"),
        )
