"""Result envelopes and budget slicing for the portfolio executor.

A worker never sends engine objects over the pipe -- BDD functions and
solver sessions are process-local -- only the :class:`WorkerEnvelope`:
a verdict string, an (optional, picklable) :class:`~repro.trace.Trace`,
the contained :class:`~repro.runtime.supervisor.AbortInfo` if the
strategy aborted, and the worker's perf-counter snapshot so the parent
can fold pool-wide totals into its own ``PERF``.

Budget slicing follows one rule: **every strategy gets the same slice
in sequential and parallel mode**.  ``slice_limits`` divides the
caller's remaining wall clock (and countable SAT/BDD resources) by the
number of strategies once, up front.  Sequential execution burns the
slices one after another; parallel execution overlaps them -- which is
where the wall-clock win comes from even on one core -- while each
individual strategy sees identical limits either way.  That equality is
what makes the determinism suite's "parallel == sequential" contract
checkable rather than aspirational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.budget import Budget
from repro.runtime.supervisor import AbortInfo
from repro.trace import Trace

#: Normalized portfolio verdicts.  Strings (not an enum) so envelopes
#: stay trivially picklable and JSON-able across worker boundaries.
VERIFIED = "verified"
FALSIFIED = "falsified"
UNKNOWN = "unknown"
ERROR = "error"

DEFINITE = (VERIFIED, FALSIFIED)


def slice_limits(budget: Optional[Budget], ways: int) -> Dict[str, Optional[float]]:
    """Limits for one of ``ways`` equal budget slices.

    Wall clock and countable resources (conflicts, BDD nodes) are split
    evenly; the memory watermark is process-level and passes through
    unchanged.  With no budget at all, every field is None (unlimited).
    """
    ways = max(1, ways)
    if budget is None:
        return {
            "max_seconds": None,
            "max_conflicts": None,
            "max_bdd_nodes": None,
            "max_memory_mb": None,
        }
    remaining = budget.remaining_seconds()
    conflicts = budget.remaining_conflicts()
    return {
        "max_seconds": None if remaining is None else remaining / ways,
        "max_conflicts": None if conflicts is None else max(
            1, conflicts // ways
        ),
        "max_bdd_nodes": None if budget.max_bdd_nodes is None else max(
            1, budget.max_bdd_nodes // ways
        ),
        "max_memory_mb": budget.max_memory_mb,
    }


def budget_from_limits(
    limits: Dict[str, Optional[float]],
    name: str,
    parent: Optional[Budget] = None,
) -> Optional[Budget]:
    """Materialize a slice budget.  ``parent`` (in-process sequential
    mode only) intersects deadlines and propagates charges upward; a
    forked worker passes None since the parent lives in another
    process.  A fully unlimited slice materializes as None, keeping
    engines on their no-budget fast path."""
    if parent is None and all(v is None for v in limits.values()):
        return None
    return Budget(
        max_seconds=limits.get("max_seconds"),
        max_conflicts=limits.get("max_conflicts"),
        max_bdd_nodes=limits.get("max_bdd_nodes"),
        max_memory_mb=limits.get("max_memory_mb"),
        name=name,
        parent=parent,
    )


@dataclass
class WorkerEnvelope:
    """One strategy's complete, pipe-safe result."""

    strategy: str
    verdict: str = UNKNOWN
    detail: str = ""
    trace: Optional[Trace] = None
    abort: Optional[AbortInfo] = None
    seconds: float = 0.0
    #: ``PERF.snapshot()`` of the worker process (empty for in-process
    #: sequential runs, whose counters land in the parent directly)
    perf: Dict[str, object] = field(default_factory=dict)
    #: the worker's drained obs trace records (``TRACER.drain()``);
    #: empty for in-process runs, whose spans land in the parent's
    #: tracer directly.  The parent absorbs these into the stitched
    #: trace next to its own spans (per-pid lanes keep them apart).
    obs: List[dict] = field(default_factory=list)
    rss_mb: Optional[float] = None
    pid: Optional[int] = None

    @property
    def definite(self) -> bool:
        return self.verdict in DEFINITE

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "verdict": self.verdict,
            "detail": self.detail,
            "trace_length": None if self.trace is None else self.trace.length,
            "abort": None if self.abort is None else self.abort.to_json(),
            "seconds": round(self.seconds, 4),
            "rss_mb": None if self.rss_mb is None else round(self.rss_mb, 1),
            "pid": self.pid,
        }
