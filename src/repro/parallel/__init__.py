"""Multiprocess portfolio execution (racing engines, sharded sweeps).

The paper's engines -- BDD reachability, the CEGAR loop, k-induction and
bounded model checking -- attack the same obligation with complementary
strengths.  :func:`repro.parallel.portfolio.race` runs them as a
portfolio: every strategy gets an equal slice of the caller's budget,
the slices run concurrently across ``multiprocessing`` workers, and the
first definite verdict cancels the rest.  :func:`repro.parallel.shard.shard_map`
is the companion for embarrassingly parallel sweeps (fuzz campaigns,
``repro batch``): an ordered parallel map with per-item isolation.

Strategies are engines resolved by name from
:data:`repro.engine.registry`; verdicts are the canonical
:class:`repro.engine.Verdict`.  Both entry points degrade to in-process
sequential execution when ``jobs <= 1`` or the platform lacks the
``fork`` start method, so every caller can treat parallelism as a pure
go-faster knob.  See DESIGN.md section 11 for the pool lifecycle,
budget-slicing and determinism contract.
"""

from repro.engine import Verdict
from repro.parallel.envelope import WorkerEnvelope, slice_limits
from repro.parallel.portfolio import PortfolioResult, canonical_witness, race
from repro.parallel.shard import ShardError, shard_map
from repro.parallel.worker import STRATEGY_ORDER, run_strategy

__all__ = [
    "Verdict",
    "WorkerEnvelope",
    "slice_limits",
    "PortfolioResult",
    "canonical_witness",
    "race",
    "ShardError",
    "shard_map",
    "STRATEGY_ORDER",
    "run_strategy",
]
