"""Portfolio strategies and the worker-process entry point.

Each strategy answers "is the property's target cube reachable?" through
one engine, normalized to the envelope verdict strings.  All four are
*sound*: a definite verdict (``verified``/``falsified``) is correct no
matter which strategy produced it, which is what licenses the race's
first-definite-wins cancellation.

- ``bdd``        -- BDD forward reachability on the COI reduction
  (complete; slow when the reachable set is large),
- ``rfn``        -- the full abstraction-refinement CEGAR loop,
- ``kinduction`` -- k-induction with simple-path constraints (complete
  at the recurrence diameter; instant on inductive properties),
- ``bmc``        -- plain bounded search (falsification specialist:
  never answers ``verified``).

:func:`run_strategy` wraps a strategy with the same containment the
supervisor gives in-process steps -- chaos injection sites (the site
name is the strategy name), ``EngineAbort``/``MemoryError``/
``RecursionError`` conversion to :class:`AbortInfo` -- so a blown-up
worker degrades to an UNKNOWN envelope instead of crashing the pool.
:func:`worker_main` is the child-process body: reset ``PERF``, run,
ship the envelope, exit.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.property import UnreachabilityProperty
from repro.kernel.perf import PERF
from repro.mc.bmc import BmcOutcome, bmc
from repro.mc.checker import _extract_error_trace
from repro.mc.encode import SymbolicEncoding
from repro.mc.images import ImageComputer
from repro.mc.reach import ReachLimits, ReachOutcome, forward_reach
from repro.netlist.circuit import Circuit
from repro.netlist.ops import coi_registers, extract_subcircuit
from repro.obs import tracer as obs
from repro.parallel.envelope import (
    ERROR,
    FALSIFIED,
    UNKNOWN,
    VERIFIED,
    WorkerEnvelope,
    budget_from_limits,
)
from repro.runtime.abort import InjectedFault
from repro.runtime.budget import Budget, process_rss_mb
from repro.runtime.chaos import ChaosMonkey, Garbage
from repro.runtime.supervisor import CONTAINED, AbortInfo
from repro.trace import Trace

#: Default race order: the paper's engine preference (exact reachability
#: first, then the CEGAR loop, then the SAT engines).  In sequential
#: mode this is the order the slices burn in; in parallel mode it only
#: breaks ties for scheduling.
STRATEGY_ORDER: Tuple[str, ...] = ("bdd", "rfn", "kinduction", "bmc")

StrategyResult = Tuple[str, Optional[Trace], str]
StrategyFn = Callable[
    [Circuit, UnreachabilityProperty, Optional[Budget]], StrategyResult
]


def _sat_depth(circuit: Circuit) -> int:
    """Unrolling cap: with simple-path constraints k-induction is
    complete at the recurrence diameter, itself bounded by the state
    count."""
    if circuit.num_registers >= 7:
        return 130
    return (1 << circuit.num_registers) + 2


def _strategy_bmc(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    budget: Optional[Budget],
) -> StrategyResult:
    result = bmc(
        circuit,
        prop,
        max_depth=_sat_depth(circuit),
        max_conflicts=None,
        induction=False,
        budget=budget,
    )
    if result.outcome is BmcOutcome.FALSE:
        return (
            FALSIFIED,
            result.trace,
            f"counterexample at depth {result.depth}",
        )
    return UNKNOWN, None, f"no counterexample within depth {result.depth}"


def _strategy_kinduction(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    budget: Optional[Budget],
) -> StrategyResult:
    result = bmc(
        circuit,
        prop,
        max_depth=_sat_depth(circuit),
        max_conflicts=None,
        induction=True,
        unique_states=True,
        budget=budget,
    )
    if result.outcome is BmcOutcome.TRUE:
        return (
            VERIFIED,
            None,
            f"k-induction at depth {result.induction_depth}",
        )
    if result.outcome is BmcOutcome.FALSE:
        return (
            FALSIFIED,
            result.trace,
            f"counterexample at depth {result.depth}",
        )
    return UNKNOWN, None, f"inconclusive at depth {result.depth}"


def _strategy_bdd(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    budget: Optional[Budget],
) -> StrategyResult:
    prop.validate_against(circuit)
    coi = coi_registers(circuit, prop.signals())
    reduced = extract_subcircuit(
        circuit, coi, prop.signals(), name=f"{circuit.name}.coi"
    )
    encoding = SymbolicEncoding(reduced)
    encoding.bdd.auto_reorder = True
    images = ImageComputer(encoding)
    target = encoding.state_cube(dict(prop.target))
    reach = forward_reach(
        images,
        encoding.initial_states(),
        target=target,
        limits=ReachLimits(budget=budget),
    )
    if reach.outcome is ReachOutcome.FIXPOINT:
        return VERIFIED, None, f"fixpoint after {reach.iterations} images"
    if reach.outcome is ReachOutcome.TARGET_HIT:
        trace = _extract_error_trace(encoding, images, reach, target)
        return FALSIFIED, trace, f"target hit in ring {reach.hit_ring}"
    return UNKNOWN, None, "reachability resource limit"


def _strategy_rfn(
    circuit: Circuit,
    prop: UnreachabilityProperty,
    budget: Optional[Budget],
) -> StrategyResult:
    # Imported lazily: core.rfn itself dispatches to this package when
    # RfnConfig.parallel is set, and the module-level cycle must break
    # somewhere.
    from repro.core.rfn import RFN, RfnConfig, RfnStatus

    result = RFN(circuit, prop, RfnConfig(budget=budget)).run()
    if result.status is RfnStatus.VERIFIED:
        return (
            VERIFIED,
            None,
            f"CEGAR verified in {len(result.iterations)} iterations",
        )
    if result.status is RfnStatus.FALSIFIED:
        return (
            FALSIFIED,
            result.trace,
            f"CEGAR falsified in {len(result.iterations)} iterations",
        )
    return UNKNOWN, None, result.detail or "CEGAR resource limit"


STRATEGIES: Dict[str, StrategyFn] = {
    "bdd": _strategy_bdd,
    "rfn": _strategy_rfn,
    "kinduction": _strategy_kinduction,
    "bmc": _strategy_bmc,
}


def run_strategy(
    strategy: str,
    circuit: Circuit,
    prop: UnreachabilityProperty,
    budget: Optional[Budget] = None,
    chaos: Optional[ChaosMonkey] = None,
    fn: Optional[StrategyFn] = None,
) -> WorkerEnvelope:
    """Run one strategy under full containment; never raises short of
    ``KeyboardInterrupt``.  The chaos site name is the strategy name, so
    ``--chaos bdd=timeout`` breaks the bdd worker exactly like it breaks
    an in-process supervised step.  ``fn`` substitutes the strategy body
    (same signature) while keeping the name, containment and chaos site
    -- the service layer uses this to run ``rfn`` with checkpoint/resume
    wired in."""
    envelope = WorkerEnvelope(strategy=strategy)
    start = time.perf_counter()
    with obs.span(f"strategy.{strategy}") as phase:
        try:
            if chaos is not None:
                chaos.before(strategy)
            body = STRATEGIES[strategy] if fn is None else fn
            verdict, trace, detail = body(circuit, prop, budget)
            if chaos is not None:
                mangled = chaos.mangle(strategy, verdict)
                if isinstance(mangled, Garbage):
                    raise InjectedFault(
                        f"garbage verdict from {strategy!r}", engine=strategy
                    )
                verdict = mangled
            envelope.verdict = verdict
            envelope.trace = trace
            envelope.detail = detail
        except CONTAINED as error:
            envelope.verdict = UNKNOWN
            envelope.abort = AbortInfo.from_exception(strategy, error)
            envelope.detail = envelope.abort.describe()
        except Exception as error:  # a strategy crash degrades, never kills
            envelope.verdict = ERROR
            envelope.detail = f"{type(error).__name__}: {error}"
        phase.set(verdict=envelope.verdict, detail=envelope.detail)
    envelope.seconds = time.perf_counter() - start
    envelope.rss_mb = process_rss_mb()
    return envelope


def worker_main(conn, strategy, circuit, prop, limits, chaos) -> None:
    """Body of one forked portfolio worker.

    Resets the process-global ``PERF`` so the envelope's snapshot is
    this worker's delta, materializes the budget slice (the clock starts
    *here*, when the worker starts running), and ships exactly one
    envelope back.  A send failure means the parent already cancelled
    the race; exiting quietly is the correct response.
    """
    PERF.reset()
    # Drop the inherited sink/ring: this child's records travel home in
    # the envelope, not through the parent's file handle.
    obs.TRACER.fork_child()
    budget = budget_from_limits(limits, name=f"portfolio/{strategy}")
    envelope = run_strategy(strategy, circuit, prop, budget, chaos=chaos)
    envelope.perf = PERF.snapshot()
    if obs.TRACER.enabled:
        envelope.obs = obs.TRACER.drain()
    import os

    envelope.pid = os.getpid()
    try:
        conn.send(envelope)
        conn.close()
    except (BrokenPipeError, OSError):  # parent cancelled us mid-send
        pass
