"""Portfolio strategy execution and the worker-process entry point.

Each strategy is an engine resolved from :data:`repro.engine.registry`
by name; all the default entries are *sound*: a definite verdict
(``verified``/``falsified``) is correct no matter which strategy
produced it, which is what licenses the race's first-definite-wins
cancellation.  The default race order is

- ``bdd``        -- BDD forward reachability on the COI reduction
  (complete; slow when the reachable set is large),
- ``rfn``        -- the full abstraction-refinement CEGAR loop,
- ``kinduction`` -- k-induction with simple-path constraints (complete
  at the recurrence diameter; instant on inductive properties),
- ``bmc``        -- plain bounded search (falsification specialist:
  never answers ``verified``).

:func:`run_strategy` wraps a strategy with the same containment the
supervisor gives in-process steps -- chaos injection sites (the site
name is the strategy name), ``EngineAbort``/``MemoryError``/
``RecursionError`` conversion to :class:`AbortInfo` -- so a blown-up
worker degrades to an UNKNOWN envelope instead of crashing the pool.
:func:`worker_main` is the child-process body: reset ``PERF``, run,
ship the envelope, exit.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.core.property import UnreachabilityProperty
from repro.engine import FunctionEngine, Limits, Verdict, registry
from repro.engine.base import EngineBody
from repro.kernel.perf import PERF
from repro.netlist.circuit import Circuit
from repro.obs import tracer as obs
from repro.parallel.envelope import WorkerEnvelope, budget_from_limits
from repro.runtime.abort import InjectedFault
from repro.runtime.budget import Budget, process_rss_mb
from repro.runtime.chaos import ChaosMonkey, Garbage
from repro.runtime.supervisor import CONTAINED, AbortInfo

#: Default race order: the paper's engine preference (exact reachability
#: first, then the CEGAR loop, then the SAT engines).  In sequential
#: mode this is the order the slices burn in; in parallel mode it only
#: breaks ties for scheduling.
STRATEGY_ORDER: Tuple[str, ...] = ("bdd", "rfn", "kinduction", "bmc")


def run_strategy(
    strategy: str,
    circuit: Circuit,
    prop: UnreachabilityProperty,
    budget: Optional[Budget] = None,
    chaos: Optional[ChaosMonkey] = None,
    fn: Optional[EngineBody] = None,
) -> WorkerEnvelope:
    """Run one strategy under full containment; never raises short of
    ``KeyboardInterrupt``.  The chaos site name is the strategy name, so
    ``--chaos bdd=timeout`` breaks the bdd worker exactly like it breaks
    an in-process supervised step.  ``fn`` substitutes the strategy body
    (an :data:`EngineBody` returning a ``VerifyResult``) while keeping
    the name, containment and chaos site -- the service layer uses this
    to run ``rfn`` with checkpoint/resume wired in."""
    envelope = WorkerEnvelope(strategy=strategy)
    start = time.perf_counter()
    with obs.span(f"strategy.{strategy}") as phase:
        try:
            if chaos is not None:
                chaos.before(strategy)
            engine = (
                registry.get(strategy)
                if fn is None
                else FunctionEngine(strategy, fn)
            )
            result = engine.run(
                circuit, prop, Limits(budget=budget), contain=False
            )
            verdict = result.verdict
            if chaos is not None:
                mangled = chaos.mangle(strategy, verdict)
                if isinstance(mangled, Garbage):
                    raise InjectedFault(
                        f"garbage verdict from {strategy!r}", engine=strategy
                    )
                verdict = mangled
            envelope.verdict = verdict
            envelope.trace = result.trace
            envelope.detail = result.detail
            envelope.witness = result.witness
        except CONTAINED as error:
            envelope.verdict = Verdict.UNKNOWN
            envelope.abort = AbortInfo.from_exception(strategy, error)
            envelope.detail = envelope.abort.describe()
        except Exception as error:  # a strategy crash degrades, never kills
            envelope.verdict = Verdict.ERROR
            envelope.detail = f"{type(error).__name__}: {error}"
        phase.set(verdict=envelope.verdict, detail=envelope.detail)
    envelope.seconds = time.perf_counter() - start
    envelope.rss_mb = process_rss_mb()
    return envelope


def worker_main(conn, strategy, circuit, prop, limits, chaos) -> None:
    """Body of one forked portfolio worker.

    Resets the process-global ``PERF`` so the envelope's snapshot is
    this worker's delta, materializes the budget slice (the clock starts
    *here*, when the worker starts running), and ships exactly one
    envelope back.  A send failure means the parent already cancelled
    the race; exiting quietly is the correct response.
    """
    PERF.reset()
    # Drop the inherited sink/ring: this child's records travel home in
    # the envelope, not through the parent's file handle.
    obs.TRACER.fork_child()
    budget = budget_from_limits(limits, name=f"portfolio/{strategy}")
    envelope = run_strategy(strategy, circuit, prop, budget, chaos=chaos)
    envelope.perf = PERF.snapshot()
    if obs.TRACER.enabled:
        envelope.obs = obs.TRACER.drain()
    import os

    envelope.pid = os.getpid()
    try:
        conn.send(envelope)
        conn.close()
    except (BrokenPipeError, OSError):  # parent cancelled us mid-send
        pass
