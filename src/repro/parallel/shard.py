"""Ordered sharded map over forked workers.

``shard_map`` is the parallel primitive behind ``repro fuzz --jobs`` and
``repro batch``: apply ``fn`` to every item, at most ``jobs`` at a time,
each item in its own forked process, and return results **in item
order** regardless of completion order.  That ordering rule is what
keeps sharded runs byte-comparable with sequential ones: downstream
consumers (campaign merging, batch reports) never observe scheduling.

Item isolation is total -- a segfaulting or OOM-killed item surfaces as
a :class:`ShardError` entry in its own slot, not a dead pool.  With
``jobs <= 1``, a single item, or no ``fork`` start method, the map runs
in-process (plain loop), so callers treat parallelism as optional.

A ``deadline`` (absolute ``time.monotonic()`` instant) stops the map
early: running workers past the deadline are cancelled and their slots
-- plus all unlaunched ones -- are filled with ``skipped``.  On
``KeyboardInterrupt`` every worker is terminated and joined before the
interrupt propagates, so Ctrl-C never leaks processes.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from typing import Callable, List, Optional, Sequence

from repro.obs import tracer as obs


class ShardError(RuntimeError):
    """An item's worker raised (or died); carries the child traceback."""


#: Slot marker for items never run because the deadline hit first.
SKIPPED = "skipped"


def _child_main(conn, fn, item) -> None:
    obs.TRACER.fork_child()

    def trace_records() -> list:
        return obs.TRACER.drain() if obs.TRACER.enabled else []

    try:
        with obs.span("shard.item"):
            value = fn(item)
        conn.send(("ok", value, trace_records()))
    except Exception as error:
        try:
            conn.send(
                (
                    "error",
                    f"{error}\n{traceback.format_exc()}",
                    trace_records(),
                )
            )
        except Exception:  # unpicklable error detail: ship text only
            conn.send(("error", traceback.format_exc(), trace_records()))
    finally:
        conn.close()


def _run_inline(
    fn: Callable, items: Sequence, deadline: Optional[float]
) -> List:
    results: List = []
    for item in items:
        if deadline is not None and time.monotonic() >= deadline:
            results.append(SKIPPED)
            continue
        results.append(fn(item))
    return results


def shard_map(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
    deadline: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
    poll_seconds: float = 0.05,
) -> List:
    """Ordered parallel map (see module docstring).

    Each result slot holds the item's return value, a :class:`ShardError`
    (worker raised or died), or the :data:`SKIPPED` marker (deadline).
    Errors are returned, not raised, so one bad item cannot hide the
    other shards' results; callers decide whether to re-raise.
    """
    items = list(items)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = None
    if jobs <= 1 or len(items) <= 1 or ctx is None:
        return _run_inline(fn, items, deadline)

    results: List = [SKIPPED] * len(items)
    next_index = 0
    running = {}  # conn -> (process, item index)

    def note(message: str) -> None:
        if log is not None:
            log(message)

    def launch() -> None:
        nonlocal next_index
        index = next_index
        next_index += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(child_conn, fn, items[index]),
            name=f"shard-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        running[parent_conn] = (proc, index)

    try:
        while next_index < len(items) and len(running) < jobs:
            launch()
        while running:
            if deadline is not None and time.monotonic() >= deadline:
                note(f"[shard] deadline hit with {len(running)} running")
                break
            ready = multiprocessing.connection.wait(
                list(running), timeout=poll_seconds
            )
            for conn in ready:
                proc, index = running.pop(conn)
                try:
                    message = conn.recv()
                    status, payload = message[0], message[1]
                    if len(message) > 2:
                        obs.TRACER.absorb(message[2])
                except (EOFError, OSError):
                    proc.join()  # exitcode is only valid after the join
                    status, payload = "error", (
                        f"shard worker for item {index} died "
                        f"(exitcode {proc.exitcode})"
                    )
                finally:
                    conn.close()
                proc.join()
                results[index] = (
                    payload if status == "ok" else ShardError(payload)
                )
                if next_index < len(items) and (
                    deadline is None or time.monotonic() < deadline
                ):
                    launch()
    finally:
        for conn, (proc, _index) in list(running.items()):
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck in a syscall
                proc.kill()
                proc.join(timeout=5.0)
            conn.close()
        running.clear()
    return results
